"""Baseline protection schemes.

See the package docstring for the scheme taxonomy.  CacheCraft itself
lives in :mod:`repro.core.cachecraft`; everything here is a baseline it
is compared against.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set

from repro.dram.channel import RequestKind
from repro.dram.layout import InlineEccLayout
from repro.ecc.base import ErrorCode
from repro.protection.base import ProtectionScheme, register_scheme
from repro.protection.codes import build_code
from repro.protection.mdcache import DedicatedMetadataCache

#: Default DRAM metadata region base (16 GiB, above any workload heap).
METADATA_BASE = 1 << 34


@register_scheme
class NoProtection(ProtectionScheme):
    """Unprotected memory: every sector fetch is one DRAM atom."""

    name = "none"

    def __init__(self) -> None:
        super().__init__()
        self.code: Optional[ErrorCode] = None

    def prepare(self, functional: bool, atom_bytes: int = 32) -> InlineEccLayout:
        """Build the (trivial) layout; called by the system pre-bind."""
        return InlineEccLayout(granule_bytes=atom_bytes, meta_per_granule=1,
                               metadata_base=METADATA_BASE, atom_bytes=atom_bytes)

    def fetch(self, slice_id: int, line_addr: int, sector_mask: int,
              on_ready: Callable[[int], None]) -> None:
        self.read_mask(slice_id, line_addr, sector_mask, RequestKind.DATA,
                       lambda: on_ready(sector_mask))

    def writeback(self, slice_id: int, line_addr: int, dirty_mask: int,
                  valid_mask: int, is_metadata: bool) -> None:
        self.functional_writeback(line_addr, dirty_mask)
        self.write_mask(slice_id, line_addr, dirty_mask, RequestKind.WRITEBACK)


@register_scheme
class SidebandEcc(ProtectionScheme):
    """ECC on dedicated devices (HBM-style): check latency, no traffic.

    The metadata rides on extra DRAM devices fetched in the same burst,
    so the only cost is the checker latency.  This is the performance
    ceiling any inline scheme chases.
    """

    name = "sideband"

    def __init__(self, code_name: str = "secded") -> None:
        super().__init__()
        self.code_name = code_name
        self.code: Optional[ErrorCode] = None
        self._layout: Optional[InlineEccLayout] = None

    def prepare(self, functional: bool, atom_bytes: int = 32) -> InlineEccLayout:
        self.code, meta = build_code(self.code_name, atom_bytes, functional)
        self._layout = InlineEccLayout(
            granule_bytes=atom_bytes, meta_per_granule=meta,
            metadata_base=METADATA_BASE, atom_bytes=atom_bytes)
        return self._layout

    @property
    def device_overhead(self) -> float:
        """Extra DRAM devices, as a fraction (sideband's real cost)."""
        layout = self._layout
        return layout.capacity_overhead if layout else 0.0

    def fetch(self, slice_id: int, line_addr: int, sector_mask: int,
              on_ready: Callable[[int], None]) -> None:
        ctx = self.ctx
        assert ctx is not None

        def done() -> None:
            base = line_addr * ctx.line_bytes
            granules = [
                ctx.layout.granule_of(base + s * ctx.sector_bytes)
                for start, length in self._mask_runs(sector_mask,
                                                     ctx.sectors_per_line)
                for s in range(start, start + length)
            ]
            self.verify_granules_then(slice_id, granules,
                                      lambda: on_ready(sector_mask))

        self.read_mask(slice_id, line_addr, sector_mask, RequestKind.DATA, done)

    def writeback(self, slice_id: int, line_addr: int, dirty_mask: int,
                  valid_mask: int, is_metadata: bool) -> None:
        self.functional_writeback(line_addr, dirty_mask)
        self.write_mask(slice_id, line_addr, dirty_mask, RequestKind.WRITEBACK)


@register_scheme
class InlineSectorCode(ProtectionScheme):
    """Per-sector code, metadata fetched from DRAM on every miss.

    Each 32 B sector carries its own code so a sector is verifiable in
    isolation, but every L2 miss costs an extra metadata atom read and
    every dirty sector writeback a metadata read-modify-write.  This is
    the naive inline-ECC floor.
    """

    name = "inline-sector"

    #: Inline metadata lives in data DRAM — enables the trace-level
    #: metadata-locality prediction (see repro.analysis.locality).
    has_inline_metadata = True

    def __init__(self, code_name: str = "secded") -> None:
        super().__init__()
        self.code_name = code_name
        self.code: Optional[ErrorCode] = None
        self._layout: Optional[InlineEccLayout] = None
        #: Set by :meth:`attach_introspection` overrides; gates the
        #: (off-path-free) granule bookkeeping below.
        self._introspecting = False

    def prepare(self, functional: bool, atom_bytes: int = 32) -> InlineEccLayout:
        self.code, meta = build_code(self.code_name, atom_bytes, functional)
        self._layout = InlineEccLayout(
            granule_bytes=atom_bytes, meta_per_granule=meta,
            metadata_base=METADATA_BASE, atom_bytes=atom_bytes)
        return self._layout

    def _on_bind(self) -> None:
        assert self.stats is not None
        self._meta_reads = self.stats.counter("metadata_reads")
        self._meta_writes = self.stats.counter("metadata_writes")

    def storage_overhead(self) -> float:
        return self._layout.capacity_overhead if self._layout else 0.0

    # -- metadata access points (overridden by the MDC variant) -----------------

    def _read_meta_atom(self, slice_id: int, atom_addr: int,
                        done: Callable[[], None], granules=()) -> None:
        """``granules`` names the data granules this atom read serves;
        it feeds only opt-in introspection (colocation accounting in
        the MDC variant) and never alters behaviour."""
        self._meta_reads.add(1)
        assert self.ctx is not None
        self.ctx.dram_read(slice_id, atom_addr, RequestKind.METADATA, done)

    def _update_meta_atom(self, slice_id: int, atom_addr: int,
                          granules=()) -> None:
        """Metadata update for a writeback (posted).

        GDDR-class DRAM supports byte-masked writes (DM pins), so the
        controller updates a granule's bytes inside the packed atom
        with a single write — no read-modify-write."""
        assert self.ctx is not None
        self._meta_writes.add(1)
        self.ctx.dram_write(slice_id, atom_addr, RequestKind.METADATA_WRITE)

    # -- scheme interface ----------------------------------------------------------

    def _meta_atoms_for(self, line_addr: int, sector_mask: int) -> Set[int]:
        ctx = self.ctx
        assert ctx is not None
        base = line_addr * ctx.line_bytes
        atoms = set()
        for start, length in self._mask_runs(sector_mask, ctx.sectors_per_line):
            for s in range(start, start + length):
                granule = ctx.layout.granule_of(base + s * ctx.sector_bytes)
                atoms.add(ctx.layout.metadata_atom(granule))
        return atoms

    def _meta_granules_for(self, line_addr: int, sector_mask: int
                           ) -> Dict[int, tuple]:
        """atom -> granules map for introspection.

        Kept separate from :meth:`_meta_atoms_for` (whose set the hot
        path iterates) so enabling introspection cannot perturb the
        order metadata reads are issued in.
        """
        ctx = self.ctx
        assert ctx is not None
        base = line_addr * ctx.line_bytes
        by_atom: Dict[int, list] = {}
        for start, length in self._mask_runs(sector_mask, ctx.sectors_per_line):
            for s in range(start, start + length):
                granule = ctx.layout.granule_of(base + s * ctx.sector_bytes)
                grans = by_atom.setdefault(ctx.layout.metadata_atom(granule), [])
                if granule not in grans:
                    grans.append(granule)
        return {atom: tuple(g) for atom, g in by_atom.items()}

    def fetch(self, slice_id: int, line_addr: int, sector_mask: int,
              on_ready: Callable[[int], None]) -> None:
        ctx = self.ctx
        assert ctx is not None
        atoms = self._meta_atoms_for(line_addr, sector_mask)
        gmap = (self._meta_granules_for(line_addr, sector_mask)
                if self._introspecting else None)
        remaining = [1 + len(atoms)]  # data + each metadata atom

        def part_done() -> None:
            remaining[0] -= 1
            if remaining[0]:
                return
            base = line_addr * ctx.line_bytes
            granules = [
                ctx.layout.granule_of(base + s * ctx.sector_bytes)
                for start, length in self._mask_runs(sector_mask,
                                                     ctx.sectors_per_line)
                for s in range(start, start + length)
            ]
            self.verify_granules_then(slice_id, granules,
                                      lambda: on_ready(sector_mask))

        self.read_mask(slice_id, line_addr, sector_mask, RequestKind.DATA,
                       part_done)
        for atom in atoms:
            self._read_meta_atom(
                slice_id, atom, part_done,
                granules=() if gmap is None else gmap.get(atom, ()))

    def writeback(self, slice_id: int, line_addr: int, dirty_mask: int,
                  valid_mask: int, is_metadata: bool) -> None:
        if is_metadata:
            # Only reachable if a subclass caches metadata in L2; write through.
            self.write_mask(slice_id, line_addr, dirty_mask,
                            RequestKind.METADATA_WRITE)
            return
        self.functional_writeback(line_addr, dirty_mask)
        self.write_mask(slice_id, line_addr, dirty_mask, RequestKind.WRITEBACK)
        gmap = (self._meta_granules_for(line_addr, dirty_mask)
                if self._introspecting else None)
        for atom in self._meta_atoms_for(line_addr, dirty_mask):
            self._update_meta_atom(
                slice_id, atom,
                granules=() if gmap is None else gmap.get(atom, ()))


@register_scheme
class MetadataCacheScheme(InlineSectorCode):
    """Per-sector code plus a dedicated SRAM metadata cache per slice.

    The strong conventional baseline: spatial locality in metadata
    atoms (one atom covers 16+ sectors) gives the small cache a high
    hit rate on regular workloads; CacheCraft's claim is that divergent
    workloads and large footprints defeat a fixed small SRAM while the
    L2 adapts.
    """

    name = "metadata-cache"

    def __init__(self, code_name: str = "secded", mdcache_kb: int = 32) -> None:
        super().__init__(code_name)
        self.mdcache_kb = mdcache_kb
        self._mdcs: Dict[int, DedicatedMetadataCache] = {}

    def _on_bind(self) -> None:
        super()._on_bind()
        assert self.ctx is not None and self.stats is not None
        self._mdc_hits = self.stats.counter("mdc_hits")
        self._mdc_misses = self.stats.counter("mdc_misses")
        # In-flight atom fetches: (slice, atom) -> [(callback, dirty)].
        self._pending: Dict[tuple, list] = {}
        for slice_id in range(len(self.ctx.channels)):
            self._mdcs[slice_id] = DedicatedMetadataCache(
                f"mdc{slice_id}", self.mdcache_kb * 1024,
                atom_bytes=self.ctx.layout.atom_bytes, stats=self.stats,
                sim=self.ctx.sim, tracer=self.ctx.tracer)

    def sram_overhead_bytes(self) -> int:
        return self.mdcache_kb * 1024 * len(self._mdcs)

    def attach_introspection(self, insp) -> None:
        """Register the per-slice metadata caches with an inspector and
        arm the (otherwise free) granule bookkeeping on the metadata
        access path."""
        self._introspecting = True
        for mdc in self._mdcs.values():
            insp.watch_mdcache(mdc.name, mdc)

    def drain(self) -> None:
        ctx = self.ctx
        assert ctx is not None
        for slice_id, mdc in self._mdcs.items():
            for atom in mdc.flush_dirty():
                self._meta_writes.add(1)
                ctx.dram_write(slice_id, atom, RequestKind.METADATA_WRITE)

    def _read_meta_atom(self, slice_id: int, atom_addr: int,
                        done: Callable[[], None], granules=()) -> None:
        ctx = self.ctx
        assert ctx is not None
        mdc = self._mdcs[slice_id]
        if mdc.lookup(atom_addr, granules=granules):
            self._mdc_hits.add(1)
            ctx.sim.schedule(2, done)  # SRAM access
            return
        self._mdc_misses.add(1)
        self._fetch_merged(slice_id, atom_addr, done, dirty=False,
                           granules=granules)

    def _update_meta_atom(self, slice_id: int, atom_addr: int,
                          granules=()) -> None:
        ctx = self.ctx
        assert ctx is not None
        mdc = self._mdcs[slice_id]
        if mdc.mark_dirty(atom_addr):
            # Coalesce repeated updates: the dirty cached atom is
            # written back once on eviction.
            self._mdc_hits.add(1)
            return
        self._mdc_misses.add(1)
        # Masked write-allocate (no fetch): coalesce future updates;
        # the entry stays write-only so reads still miss on it.
        victim = mdc.insert(atom_addr, dirty=True, verified=False,
                            granules=granules)
        if victim is not None:
            self._meta_writes.add(1)
            ctx.dram_write(slice_id, victim, RequestKind.METADATA_WRITE)

    def invalidate_metadata(self, slice_id: int, granule: int) -> None:
        """Drop the granule's cached metadata atom (corrupted in DRAM:
        the SRAM copy must not serve further verifications)."""
        ctx = self.ctx
        assert ctx is not None
        self._mdcs[slice_id].invalidate(ctx.layout.metadata_atom(granule))

    def _fetch_merged(self, slice_id: int, atom_addr: int,
                      done: Optional[Callable[[], None]], dirty: bool,
                      granules=()) -> None:
        """Fetch an atom into the MDC, merging concurrent requests."""
        ctx = self.ctx
        assert ctx is not None
        key = (slice_id, atom_addr)
        waiters = self._pending.get(key)
        if waiters is not None:
            waiters.append((done, dirty, granules))
            return
        self._pending[key] = [(done, dirty, granules)]
        self._meta_reads.add(1)
        mdc = self._mdcs[slice_id]

        def filled() -> None:
            entries = self._pending.pop(key, ())
            make_dirty = any(d for _cb, d, _g in entries)
            merged = tuple(dict.fromkeys(
                g for _cb, _d, gs in entries for g in gs))
            victim = mdc.insert(atom_addr, dirty=make_dirty, granules=merged)
            if victim is not None:
                self._meta_writes.add(1)
                ctx.dram_write(slice_id, victim, RequestKind.METADATA_WRITE)
            for cb, _d, _g in entries:
                if cb is not None:
                    cb()

        ctx.dram_read(slice_id, atom_addr, RequestKind.METADATA, filled)


@register_scheme
class SectorMetadataInL2(InlineSectorCode):
    """Per-sector code with metadata cached in the regular L2.

    The intermediate design point between ``metadata-cache`` and
    ``cachecraft`` (experiment F11): it borrows CacheCraft's
    metadata-in-L2 idea — no dedicated SRAM, write-only coalescing via
    masked writes — but keeps the weaker, costlier per-sector code and
    has no reconstruction machinery.  Whatever it fails to win relative
    to CacheCraft is attributable to the granule code + contribution
    directory, not to the metadata home.
    """

    name = "sector-l2"

    def _on_bind(self) -> None:
        super()._on_bind()
        assert self.ctx is not None and self.stats is not None
        self._meta_l2_hits = self.stats.counter("meta_l2_hits")
        self._meta_l2_misses = self.stats.counter("meta_l2_misses")
        # In-flight metadata atom fetches: (slice, atom) -> callbacks.
        self._pending: Dict[tuple, list] = {}

    def _meta_location(self, atom_addr: int):
        line_addr = atom_addr // self.ctx.line_bytes
        sector = (atom_addr % self.ctx.line_bytes) // self.ctx.sector_bytes
        return line_addr, 1 << sector

    def _read_meta_atom(self, slice_id: int, atom_addr: int,
                        done: Callable[[], None], granules=()) -> None:
        ctx = self.ctx
        assert ctx is not None
        meta_line, bit = self._meta_location(atom_addr)
        resident = ctx.l2_resident_verified(slice_id, meta_line,
                                            clean_only=False)
        if resident & bit:
            self._meta_l2_hits.add(1)
            ctx.sim.schedule(2, done)
            return
        self._meta_l2_misses.add(1)
        key = (slice_id, atom_addr)
        waiters = self._pending.get(key)
        if waiters is not None:
            waiters.append(done)
            return
        self._pending[key] = [done]
        self._meta_reads.add(1)

        def arrived() -> None:
            ctx.l2_install(slice_id, meta_line, bit, is_metadata=True)
            for waiter in self._pending.pop(key, ()):
                waiter()

        ctx.dram_read(slice_id, atom_addr, RequestKind.METADATA, arrived)

    def _update_meta_atom(self, slice_id: int, atom_addr: int,
                          granules=()) -> None:
        ctx = self.ctx
        assert ctx is not None
        self._meta_writes.add(1)
        meta_line, bit = self._meta_location(atom_addr)
        # Masked write-allocate into L2: coalesce, write once on eviction.
        ctx.l2_install(slice_id, meta_line, bit, is_metadata=True,
                       dirty=True, verified=False, low_priority=True)

    def invalidate_metadata(self, slice_id: int, granule: int) -> None:
        """Drop the L2 line holding the granule's metadata atom."""
        ctx = self.ctx
        assert ctx is not None
        meta_line, _bit = self._meta_location(ctx.layout.metadata_atom(granule))
        ctx.l2_invalidate(slice_id, meta_line)

    def writeback(self, slice_id: int, line_addr: int, dirty_mask: int,
                  valid_mask: int, is_metadata: bool) -> None:
        if is_metadata:
            self.write_mask(slice_id, line_addr, dirty_mask,
                            RequestKind.METADATA_WRITE)
            return
        super().writeback(slice_id, line_addr, dirty_mask, valid_mask,
                          is_metadata)


@register_scheme
class InlineFullGranule(MetadataCacheScheme):
    """Per-granule code with full-granule fetch on every miss.

    The code covers a whole granule (128 B+), so redundancy is lower
    and protection stronger than per-sector codes — but a single-sector
    miss must fetch the *entire* granule to verify, which is what makes
    "ECC mode" expensive for memory-divergent workloads.  Metadata goes
    through the same dedicated cache as :class:`MetadataCacheScheme` so
    the comparison against CacheCraft isolates the data-overfetch cost.
    """

    name = "inline-full"

    def __init__(self, code_name: str = "secded", granule_bytes: int = 128,
                 mdcache_kb: int = 32) -> None:
        super().__init__(code_name, mdcache_kb)
        self.granule_bytes = granule_bytes

    def prepare(self, functional: bool, atom_bytes: int = 32) -> InlineEccLayout:
        self.code, meta = build_code(self.code_name, self.granule_bytes,
                                     functional)
        self._layout = InlineEccLayout(
            granule_bytes=self.granule_bytes, meta_per_granule=meta,
            metadata_base=METADATA_BASE, atom_bytes=atom_bytes)
        return self._layout

    def _on_bind(self) -> None:
        super()._on_bind()
        assert self.stats is not None
        self._overfetch_sectors = self.stats.counter("overfetch_sectors")
        self._rmw_sectors = self.stats.counter("rmw_sectors")
        # Pure-geometry memos (layout is fixed once bound).
        self._glines_memo = {}
        self._granules_memo = {}

    # -- granule geometry helpers ------------------------------------------------

    def _granules_of(self, line_addr: int, sector_mask: int):
        memo = self._granules_memo
        cached = memo.get((line_addr, sector_mask))
        if cached is not None:
            return cached
        ctx = self.ctx
        assert ctx is not None
        base = line_addr * ctx.line_bytes
        granules = []
        for start, length in self._mask_runs(sector_mask, ctx.sectors_per_line):
            for s in range(start, start + length):
                granule = ctx.layout.granule_of(base + s * ctx.sector_bytes)
                if granule not in granules:
                    granules.append(granule)
        result = tuple(granules)
        memo[(line_addr, sector_mask)] = result
        return result

    def _granule_lines(self, granule: int):
        """(line_addr, sector_mask) tiles covering the whole granule."""
        memo = self._glines_memo
        cached = memo.get(granule)
        if cached is not None:
            return cached
        ctx = self.ctx
        assert ctx is not None
        base = ctx.layout.granule_base(granule)
        end = base + ctx.layout.granule_bytes
        addr = base
        tiles = []
        while addr < end:
            line_addr = addr // ctx.line_bytes
            line_base = line_addr * ctx.line_bytes
            mask = 0
            while addr < end and addr // ctx.line_bytes == line_addr:
                mask |= 1 << ((addr - line_base) // ctx.sector_bytes)
                addr += ctx.sector_bytes
            tiles.append((line_addr, mask))
        result = tuple(tiles)
        memo[granule] = result
        return result

    # -- scheme interface ------------------------------------------------------------

    def fetch(self, slice_id: int, line_addr: int, sector_mask: int,
              on_ready: Callable[[int], None]) -> None:
        ctx = self.ctx
        assert ctx is not None
        granules = self._granules_of(line_addr, sector_mask)
        pending = [0]
        granted = [0]  # sectors granted to the requesting line
        sibling_fills = []  # (line, mask) for other lines of the granules

        def part_done() -> None:
            pending[0] -= 1
            if pending[0]:
                return
            # Sibling fills install before verification resolves; under
            # recovery a DUE granule's sectors get poisoned afterwards.
            for line, mask in sibling_fills:
                ctx.l2_install(slice_id, line, mask)
            self.verify_granules_then(slice_id, granules,
                                      lambda: on_ready(granted[0]))

        for granule in granules:
            for g_line, g_mask in self._granule_lines(granule):
                if g_line == line_addr:
                    demand = g_mask & sector_mask
                    extra = g_mask & ~sector_mask
                    granted[0] |= g_mask
                else:
                    demand = 0
                    extra = g_mask
                    sibling_fills.append((g_line, g_mask))
                if demand:
                    pending[0] += 1
                    self.read_mask(slice_id, g_line, demand,
                                   RequestKind.DATA, part_done)
                if extra:
                    pending[0] += 1
                    self._overfetch_sectors.add(extra.bit_count())
                    self.read_mask(slice_id, g_line, extra,
                                   RequestKind.VERIFY_FILL, part_done)
            pending[0] += 1
            self._read_meta_atom(slice_id, ctx.layout.metadata_atom(granule),
                                 part_done, granules=(granule,))
        if pending[0] == 0:  # cannot happen, but stay safe
            ctx.sim.schedule(0, on_ready, sector_mask)

    def writeback(self, slice_id: int, line_addr: int, dirty_mask: int,
                  valid_mask: int, is_metadata: bool) -> None:
        ctx = self.ctx
        assert ctx is not None
        if is_metadata:
            self.write_mask(slice_id, line_addr, dirty_mask,
                            RequestKind.METADATA_WRITE)
            return
        self.functional_writeback(line_addr, dirty_mask)
        for granule in self._granules_of(line_addr, dirty_mask):
            # The codeword needs the whole granule: read whatever the
            # evicted line does not itself hold (no reconstruction —
            # that is CacheCraft's trick, not this baseline's).
            for g_line, g_mask in self._granule_lines(granule):
                held = valid_mask if g_line == line_addr else 0
                missing = g_mask & ~held
                if missing:
                    self._rmw_sectors.add(missing.bit_count())
                    self.read_mask(slice_id, g_line, missing,
                                   RequestKind.VERIFY_FILL, _noop)
            self._update_meta_atom(slice_id, ctx.layout.metadata_atom(granule),
                                   granules=(granule,))
        self.write_mask(slice_id, line_addr, dirty_mask, RequestKind.WRITEBACK)


def _noop() -> None:
    """Completion sink for posted read-modify-write fills."""
