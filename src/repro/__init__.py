"""CacheCraft reproduction: GPU performance under memory protection
through reconstructed caching.

Public API tour
---------------

Run one workload under one protection scheme::

    from repro import SystemConfig, run_workload, make_workload

    config = SystemConfig().with_scheme("cachecraft")
    result = run_workload(make_workload("spmv"), config)
    print(result.cycles, result.traffic)

Compare schemes (the headline experiment)::

    from repro.analysis import compare_schemes

    table = compare_schemes("spmv", schemes=("none", "inline-full",
                                             "cachecraft"))

The package layout mirrors the simulated machine: :mod:`repro.ecc`
(codes), :mod:`repro.cache` / :mod:`repro.dram` / :mod:`repro.gpu`
(substrates), :mod:`repro.protection` (baseline schemes),
:mod:`repro.core` (CacheCraft + system assembly),
:mod:`repro.workloads` (trace generators) and :mod:`repro.analysis`
(experiment harness).  DESIGN.md documents the reconstruction scope and
EXPERIMENTS.md the reproduced tables/figures.
"""

from repro.core.config import (
    ALL_SCHEMES,
    PROTECTED_SCHEMES,
    GpuConfig,
    ProtectionConfig,
    ResilienceConfig,
    SystemConfig,
    test_config,
)
from repro.core.results import RunResult
from repro.core.system import GpuSystem, run_workload
from repro.protection.base import make_scheme
from repro.workloads import REPRESENTATIVE_WORKLOADS, WORKLOADS, make_workload
from repro.workloads.base import GenContext

__version__ = "1.0.0"

__all__ = [
    "GpuConfig",
    "ProtectionConfig",
    "ResilienceConfig",
    "SystemConfig",
    "GpuSystem",
    "RunResult",
    "run_workload",
    "make_scheme",
    "make_workload",
    "GenContext",
    "ALL_SCHEMES",
    "PROTECTED_SCHEMES",
    "WORKLOADS",
    "REPRESENTATIVE_WORKLOADS",
    "test_config",
    "__version__",
]
