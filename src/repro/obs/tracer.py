"""Structured event tracing in Chrome trace format.

Components emit *spans* (``ph="X"`` complete events), *instants*
(``ph="i"``) and *counter samples* (``ph="C"``) into a bounded ring
buffer; the buffer serializes to the Chrome/Perfetto ``traceEvents``
JSON schema, so a run can be inspected in ``chrome://tracing`` or
https://ui.perfetto.dev.  Timestamps are simulated core cycles written
into the ``ts``/``dur`` microsecond fields (1 cycle == 1 "µs"), which
keeps the viewer's zoom and duration arithmetic meaningful.

Design constraints, in order:

1. **The disabled path costs nothing.**  ``NULL_TRACER`` is a shared
   no-op singleton whose ``wants()`` always answers ``False``;
   components cache that answer per category at construction time, so a
   disabled run pays one attribute load per *potential* event site and
   allocates no event objects at all.
2. **Bounded memory.**  The ring buffer keeps the most recent
   ``capacity`` events and counts what it dropped; a long run cannot
   OOM the host through tracing.
3. **Category filtering.** ``ChromeTracer(categories={"dram", "l2"})``
   records only those categories; ``None`` records everything.

Trace categories used by the simulator:

=========  ====================================================
category   events
=========  ====================================================
``sm``     per-warp memory-op spans (issue -> all data returned)
``l2``     L2 slice misses and metadata installs
``mdcache``  dedicated metadata-cache misses and fills
``dram``   per-request DRAM spans (enqueue -> data end)
``resilience``  fault injections, DUEs, recovery retries, poisoning
=========  ====================================================
"""

from __future__ import annotations

import json
from collections import deque
from typing import IO, Deque, Dict, Iterable, List, Optional, Union


class NullTracer:
    """Shared do-nothing tracer; the default for every component.

    All emit methods are no-ops and ``wants()`` is always ``False``, so
    call sites can cache ``tracer.wants(cat)`` in a local boolean and
    skip event construction entirely when tracing is off.
    """

    enabled = False

    def wants(self, category: str) -> bool:
        return False

    def instant(self, category: str, name: str, ts: int,
                args: Optional[dict] = None, tid: int = 0) -> None:
        pass

    def complete(self, category: str, name: str, ts: int, dur: int,
                 args: Optional[dict] = None, tid: int = 0) -> None:
        pass

    def counter(self, category: str, name: str, ts: int,
                values: Dict[str, float], tid: int = 0) -> None:
        pass


#: The process-wide disabled tracer. Everything defaults to this.
NULL_TRACER = NullTracer()


class ChromeTracer(NullTracer):
    """A recording tracer with a bounded ring buffer.

    Parameters
    ----------
    capacity:
        Maximum retained events; older events are dropped first and
        counted in :attr:`dropped`.
    categories:
        Iterable of category names to record, or ``None`` for all.
    """

    enabled = True

    def __init__(self, capacity: int = 1_000_000,
                 categories: Optional[Iterable[str]] = None):
        if capacity < 1:
            raise ValueError("tracer capacity must be >= 1")
        self.capacity = capacity
        self.categories = frozenset(categories) if categories is not None \
            else None
        self._events: Deque[dict] = deque(maxlen=capacity)
        self.dropped = 0

    def wants(self, category: str) -> bool:
        return self.categories is None or category in self.categories

    def _push(self, event: dict) -> None:
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)

    def instant(self, category: str, name: str, ts: int,
                args: Optional[dict] = None, tid: int = 0) -> None:
        if not self.wants(category):
            return
        event = {"name": name, "cat": category, "ph": "i", "ts": ts,
                 "pid": 0, "tid": tid, "s": "t"}
        if args:
            event["args"] = args
        self._push(event)

    def complete(self, category: str, name: str, ts: int, dur: int,
                 args: Optional[dict] = None, tid: int = 0) -> None:
        if not self.wants(category):
            return
        event = {"name": name, "cat": category, "ph": "X", "ts": ts,
                 "dur": dur, "pid": 0, "tid": tid}
        if args:
            event["args"] = args
        self._push(event)

    def counter(self, category: str, name: str, ts: int,
                values: Dict[str, float], tid: int = 0) -> None:
        if not self.wants(category):
            return
        self._push({"name": name, "cat": category, "ph": "C", "ts": ts,
                    "pid": 0, "tid": tid, "args": dict(values)})

    # -- export ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    @property
    def events(self) -> List[dict]:
        """A copy of the retained events, oldest first."""
        return list(self._events)

    def to_dict(self) -> dict:
        """The Chrome trace JSON object."""
        return {
            "traceEvents": list(self._events),
            "displayTimeUnit": "ms",
            "otherData": {
                "producer": "cachecraft-sim",
                "clock": "core-cycles (1 cycle = 1us in the viewer)",
                "dropped_events": self.dropped,
            },
        }

    def export(self, destination: Union[str, IO[str]]) -> int:
        """Write Chrome trace JSON to a path or file object.

        Returns the number of events written.
        """
        payload = self.to_dict()
        if hasattr(destination, "write"):
            json.dump(payload, destination)
        else:
            with open(destination, "w") as fh:
                json.dump(payload, fh)
        return len(self._events)
