"""Static HTML run report over the ledger.

``repro obs report --html out.html`` renders the run ledger
(:mod:`repro.obs.ledger`) into one **self-contained** HTML file: no
external scripts, stylesheets, fonts or network references of any
kind — everything is inline CSS and inline SVG, so the artifact can be
attached to CI, mailed around, or opened from a USB stick years later.

Sections:

* **perf trajectory** — one sparkline per (workload, scheme) cell with
  at least two records (cycles over run sequence), plus the engine
  events/sec trajectory from bench records;
* **scheme comparison** — the latest record per cell, grouped by
  workload, with performance normalized to the ``none`` scheme when
  present;
* **latency stacks** — horizontal stacked bars (data / metadata /
  queue cycles) for every cell whose latest record carries latency
  attribution.

Colors are the repo's validated categorical palette (first three
slots, colorblind-safe in both light and dark mode); dark mode is a
selected set of steps, not an automatic inversion.
"""

from __future__ import annotations

import html
from typing import Any, Dict, List, Optional, Sequence

_CSS = """
:root {
  color-scheme: light dark;
  --surface-1: #fcfcfb;
  --page: #f9f9f7;
  --ink-1: #0b0b0b;
  --ink-2: #52514e;
  --muted: #898781;
  --grid: #e1e0d9;
  --border: rgba(11, 11, 11, 0.10);
  --series-1: #2a78d6;  /* data */
  --series-2: #eb6834;  /* metadata */
  --series-3: #1baf7a;  /* queue/transit */
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --ink-1: #ffffff;
    --ink-2: #c3c2b7;
    --muted: #898781;
    --grid: #2c2c2a;
    --border: rgba(255, 255, 255, 0.10);
    --series-1: #3987e5;
    --series-2: #d95926;
    --series-3: #199e70;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px;
  background: var(--page); color: var(--ink-1);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
}
main { max-width: 920px; margin: 0 auto; }
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 10px; }
.meta { color: var(--ink-2); font-size: 12px; margin: 0 0 18px; }
section.card {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 16px 18px; margin: 0 0 16px;
}
table { border-collapse: collapse; width: 100%; font-size: 13px; }
th, td {
  text-align: right; padding: 5px 10px;
  border-bottom: 1px solid var(--grid);
  font-variant-numeric: tabular-nums;
}
th { color: var(--muted); font-weight: 600; }
th:first-child, td:first-child { text-align: left; }
tr:last-child td { border-bottom: none; }
.spark-row {
  display: flex; align-items: center; gap: 12px;
  padding: 6px 0; border-bottom: 1px solid var(--grid);
}
.spark-row:last-child { border-bottom: none; }
.spark-label { flex: 0 0 180px; color: var(--ink-2); font-size: 13px; }
.spark-vals {
  flex: 0 0 auto; color: var(--muted); font-size: 12px;
  font-variant-numeric: tabular-nums;
}
.stack {
  display: flex; height: 18px; border-radius: 4px; overflow: hidden;
  background: var(--grid); margin: 4px 0 2px;
}
.stack span { height: 100%; }
.stack span + span { border-left: 2px solid var(--surface-1); }
.seg-data { background: var(--series-1); }
.seg-metadata { background: var(--series-2); }
.seg-queue { background: var(--series-3); }
.legend {
  display: flex; gap: 16px; font-size: 12px; color: var(--ink-2);
  margin: 8px 0 2px;
}
.legend i {
  display: inline-block; width: 10px; height: 10px;
  border-radius: 2px; margin-right: 5px; vertical-align: -1px;
}
.stack-label { font-size: 12px; color: var(--ink-2); margin-top: 10px; }
.empty { color: var(--muted); font-style: italic; }
footer { color: var(--muted); font-size: 11px; margin-top: 20px; }
svg.spark { display: block; }
svg.spark polyline {
  fill: none; stroke: var(--series-1); stroke-width: 2;
  stroke-linecap: round; stroke-linejoin: round;
}
svg.spark circle { fill: var(--series-1); }
svg.heat { display: block; margin: 2px 0 6px; }
.heat-label { font-size: 12px; color: var(--ink-2); margin-top: 8px; }
svg.cdf { display: block; margin: 6px 0; }
svg.cdf polyline {
  fill: none; stroke-width: 2;
  stroke-linecap: round; stroke-linejoin: round;
}
svg.cdf line.axis { stroke: var(--grid); stroke-width: 1; }
.cdf-1 { stroke: var(--series-1); }
.cdf-2 { stroke: var(--series-2); }
.cdf-3 { stroke: var(--series-3); }
"""


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def _num(value: Any) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:,.3f}"
    try:
        return f"{int(value):,}"
    except (TypeError, ValueError):
        return _esc(value)


def _sparkline(values: Sequence[float], width: int = 240,
               height: int = 36) -> str:
    """An inline SVG sparkline (no axes; endpoints labeled by caller).

    Degenerate series render sensibly instead of crashing: an empty
    series is an empty (but correctly-sized) SVG, and a constant or
    single-point series is a centered flat line — not a polyline
    collapsed onto one edge.
    """
    pad = 4
    n = len(values)
    if n == 0:
        return (f'<svg class="spark" width="{width}" height="{height}" '
                f'viewBox="0 0 {width} {height}" role="img" '
                'aria-label="no data"></svg>')
    lo, hi = min(values), max(values)
    if hi == lo:
        y = round(height / 2, 1)
        return (f'<svg class="spark" width="{width}" height="{height}" '
                f'viewBox="0 0 {width} {height}" role="img" '
                f'aria-label="flat trajectory of {n} runs">'
                f'<polyline points="{pad},{y} {width - pad},{y}"/>'
                f'<circle cx="{width - pad}" cy="{y}" r="3"/></svg>')
    span = hi - lo
    points = []
    for i, v in enumerate(values):
        x = pad + (width - 2 * pad) * (i / (n - 1) if n > 1 else 0.5)
        y = height - pad - (height - 2 * pad) * ((v - lo) / span)
        points.append((round(x, 1), round(y, 1)))
    pts = " ".join(f"{x},{y}" for x, y in points)
    lx, ly = points[-1]
    return (f'<svg class="spark" width="{width}" height="{height}" '
            f'viewBox="0 0 {width} {height}" role="img" '
            f'aria-label="trajectory of {n} runs">'
            f'<polyline points="{pts}"/>'
            f'<circle cx="{lx}" cy="{ly}" r="3"/></svg>')


def _spark_row(label: str, values: List[float], unit: str = "") -> str:
    if not values:
        return ('<div class="spark-row">'
                f'<div class="spark-label">{_esc(label)}</div>'
                f'{_sparkline(values)}'
                '<div class="spark-vals empty">no data</div></div>')
    tail = f" {unit}" if unit else ""
    return ('<div class="spark-row">'
            f'<div class="spark-label">{_esc(label)}</div>'
            f'{_sparkline(values)}'
            f'<div class="spark-vals">{_num(values[0])} &#8594; '
            f'{_num(values[-1])}{tail} '
            f'({len(values)} runs)</div></div>')


def _cell_series(records: Sequence[Dict[str, Any]]
                 ) -> Dict[str, List[Dict[str, Any]]]:
    series: Dict[str, List[Dict[str, Any]]] = {}
    for rec in records:
        if rec.get("kind") == "run" and rec.get("cell"):
            series.setdefault(rec["cell"], []).append(rec)
    return series


def _trajectory_section(records: Sequence[Dict[str, Any]]) -> str:
    rows: List[str] = []
    benches = [r for r in records if r.get("kind") == "bench"]
    for metric, label in (("sim_events_per_sec", "engine (real sim)"),
                          ("raw_events_per_sec", "engine (raw loop)")):
        values = [float((b.get("metrics") or {}).get(metric, 0))
                  for b in benches
                  if (b.get("metrics") or {}).get(metric) is not None]
        if len(values) >= 2:
            rows.append(_spark_row(label, values, "ev/s"))
    for cell, recs in sorted(_cell_series(records).items()):
        cycles = [float((r.get("metrics") or {}).get("cycles", 0))
                  for r in recs
                  if (r.get("metrics") or {}).get("cycles") is not None]
        if len(cycles) >= 2:
            rows.append(_spark_row(cell, cycles, "cycles"))
    if not rows:
        rows.append('<p class="empty">fewer than two records per cell '
                    '&#8212; run more experiments to grow a trajectory</p>')
    return ('<section class="card"><h2>Performance trajectory</h2>'
            + "".join(rows) + "</section>")


def _comparison_section(records: Sequence[Dict[str, Any]]) -> str:
    latest: Dict[str, Dict[str, Any]] = {}
    for cell, recs in _cell_series(records).items():
        latest[cell] = recs[-1]
    by_workload: Dict[str, List[Dict[str, Any]]] = {}
    for rec in latest.values():
        by_workload.setdefault(rec.get("workload", "?"), []).append(rec)
    if not by_workload:
        return ('<section class="card"><h2>Scheme comparison</h2>'
                '<p class="empty">no run records</p></section>')
    blocks: List[str] = []
    for workload in sorted(by_workload):
        recs = by_workload[workload]
        base_cycles: Optional[float] = None
        for rec in recs:
            if rec.get("scheme") == "none":
                base_cycles = (rec.get("metrics") or {}).get("cycles")
        rows = []
        for rec in sorted(recs, key=lambda r: str(r.get("scheme"))):
            m = rec.get("metrics") or {}
            cycles = m.get("cycles")
            norm = (f"{base_cycles / cycles:.3f}"
                    if base_cycles and cycles else "-")
            l2 = m.get("l2_hit_rate")
            rows.append(
                "<tr>"
                f"<td>{_esc(rec.get('scheme'))}</td>"
                f"<td>{norm}</td>"
                f"<td>{_num(cycles) if cycles is not None else '-'}</td>"
                f"<td>{_num(m.get('total_dram_bytes', '-'))}</td>"
                f"<td>{_num(m.get('overhead_bytes', '-'))}</td>"
                f"<td>{f'{l2:.3f}' if isinstance(l2, (int, float)) else '-'}"
                "</td>"
                f"<td>{'cached' if rec.get('cached') else 'simulated'}</td>"
                "</tr>")
        blocks.append(
            f"<h2>Scheme comparison &#8212; {_esc(workload)}</h2>"
            "<table><thead><tr><th>scheme</th><th>norm perf</th>"
            "<th>cycles</th><th>DRAM bytes</th><th>overhead bytes</th>"
            "<th>L2 hit</th><th>source</th></tr></thead><tbody>"
            + "".join(rows) + "</tbody></table>")
    return '<section class="card">' + "".join(blocks) + "</section>"


def _latency_section(records: Sequence[Dict[str, Any]]) -> str:
    latest: Dict[str, Dict[str, Any]] = {}
    for cell, recs in _cell_series(records).items():
        for rec in recs:
            if rec.get("latency", {}).get("total_cycles"):
                latest[cell] = rec
    header = '<section class="card"><h2>Latency breakdown</h2>'
    if not latest:
        return (header + '<p class="empty">no records with latency '
                "attribution (run the <code>profile</code> subcommand "
                "or pass <code>attribute_latency=True</code>)</p>"
                "</section>")
    legend = ('<div class="legend">'
              '<span><i class="seg-data"></i>data</span>'
              '<span><i class="seg-metadata"></i>metadata</span>'
              '<span><i class="seg-queue"></i>queue/transit</span></div>')
    bars: List[str] = []
    for cell in sorted(latest):
        lat = latest[cell]["latency"]
        total = float(lat.get("total_cycles") or 0) or 1.0
        segs = []
        for key, cls, name in (("data_cycles", "seg-data", "data"),
                               ("metadata_cycles", "seg-metadata",
                                "metadata"),
                               ("queue_cycles", "seg-queue",
                                "queue/transit")):
            cycles = float(lat.get(key, 0))
            share = cycles / total
            if share <= 0:
                continue
            segs.append(
                f'<span class="{cls}" style="width:{share * 100:.2f}%" '
                f'title="{name}: {cycles:,.0f} cycles '
                f'({share:.1%} of total)"></span>')
        bars.append(
            f'<div class="stack-label">{_esc(cell)} &#8212; '
            f'{total:,.0f} attributed cycles over '
            f'{int(lat.get("requests", 0)):,} requests</div>'
            f'<div class="stack">{"".join(segs)}</div>')
    return header + legend + "".join(bars) + "</section>"


def render_html(records: Sequence[Dict[str, Any]],
                title: str = "CacheCraft run report") -> str:
    """Render ledger records into one self-contained HTML document."""
    records = list(records)
    runs = sum(1 for r in records if r.get("kind") == "run")
    benches = sum(1 for r in records if r.get("kind") == "bench")
    sha = next((r.get("git_sha") for r in reversed(records)
                if r.get("git_sha")), None)
    model = next((r.get("model_version") for r in reversed(records)
                  if r.get("model_version")), None)
    meta_bits = [f"{len(records)} records ({runs} runs, {benches} bench)"]
    if model:
        meta_bits.append(f"model v{_esc(model)}")
    if sha:
        meta_bits.append(f"git {_esc(str(sha)[:12])}")
    body = (_trajectory_section(records)
            + _comparison_section(records)
            + _latency_section(records))
    return ("<!DOCTYPE html>\n"
            '<html lang="en"><head><meta charset="utf-8">'
            f"<title>{_esc(title)}</title>"
            f"<style>{_CSS}</style></head><body><main>"
            f"<h1>{_esc(title)}</h1>"
            f'<p class="meta">{" &#183; ".join(meta_bits)}</p>'
            + body +
            "<footer>generated by <code>repro obs report</code> &#8212; "
            "fully self-contained (inline CSS + SVG, no network "
            "references)</footer>"
            "</main></body></html>\n")


def write_html(records: Sequence[Dict[str, Any]], path,
               title: str = "CacheCraft run report") -> None:
    """Write :func:`render_html` output to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render_html(records, title=title))


# -- memory-hierarchy introspection report ------------------------------------


def _heat_strip(values: Sequence[float], color_var: str, label: str,
                width: int = 640, height: int = 14) -> str:
    """One-row set/bank heatmap: a rect per slot, opacity by share of
    the peak value (hover titles carry the exact counts)."""
    n = len(values)
    if n == 0:
        return '<p class="empty">no slots</p>'
    peak = max(values) or 1
    cell = width / n
    rects = []
    for i, v in enumerate(values):
        opacity = 0.08 + 0.92 * (v / peak) if v else 0.04
        rects.append(
            f'<rect x="{i * cell:.2f}" y="0" width="{cell + 0.05:.2f}" '
            f'height="{height}" fill="var({color_var})" '
            f'fill-opacity="{opacity:.3f}">'
            f'<title>{_esc(label)} {i}: {_num(v)}</title></rect>')
    return (f'<svg class="heat" width="{width}" height="{height}" '
            f'viewBox="0 0 {width} {height}" role="img" '
            f'aria-label="{_esc(label)} heatmap ({n} slots)">'
            + "".join(rects) + "</svg>")


def _cdf_svg(series: Sequence[tuple], width: int = 420,
             height: int = 140) -> str:
    """Reuse-distance CDF plot: ``series`` is (label, css_class,
    [[distance, cum_frac], ...]) triples; x is log2-scaled distance."""
    import math

    pad = 8
    drawn = [(label, cls, pts) for label, cls, pts in series if pts]
    if not drawn:
        return '<p class="empty">no reuse (every reference is cold)</p>'
    max_d = max(pt[0] for _lbl, _cls, pts in drawn for pt in pts)
    x_span = math.log2(1.0 + max_d) or 1.0
    parts = [f'<svg class="cdf" width="{width}" height="{height}" '
             f'viewBox="0 0 {width} {height}" role="img" '
             'aria-label="reuse-distance CDF">',
             f'<line class="axis" x1="{pad}" y1="{height - pad}" '
             f'x2="{width - pad}" y2="{height - pad}"/>',
             f'<line class="axis" x1="{pad}" y1="{pad}" '
             f'x2="{pad}" y2="{height - pad}"/>']
    for _label, cls, pts in drawn:
        coords = []
        for dist, frac in pts:
            x = pad + (width - 2 * pad) * math.log2(1.0 + dist) / x_span
            y = height - pad - (height - 2 * pad) * frac
            coords.append(f"{x:.1f},{y:.1f}")
        parts.append(f'<polyline class="{cls}" '
                     f'points="{" ".join(coords)}"/>')
    parts.append("</svg>")
    legend = "".join(
        f'<span><i style="background:'
        f'var(--series-{cls.rpartition("-")[2]})"></i>{_esc(label)}</span>'
        for label, cls, _pts in drawn)
    return (f'<div class="legend">{legend}</div>' + "".join(parts)
            + '<div class="heat-label">x: reuse distance (log2), '
              'y: cumulative fraction of warm references</div>')


def _inspect_trace_block(trace: Optional[Dict[str, Any]]) -> str:
    if not trace:
        return ('<p class="empty">no trace analytics (workload could '
                "not be compiled to the columnar IR)</p>")
    line = trace.get("line", {})
    sector = trace.get("sector", {})
    coal = trace.get("coalescing", {})
    meta = trace.get("metadata")
    rows = [
        ("memory ops", trace.get("mem_ops")),
        ("transactions", trace.get("txns")),
        ("line footprint", f"{_num(line.get('footprint_bytes', 0))} B "
                           f"({_num(line.get('footprint_lines', 0))} lines)"),
        ("line reuse frac", line.get("reuse", {}).get("reuse_frac")),
        ("sector utilization", coal.get("sector_utilization")),
        ("txns / mem op", coal.get("txns_per_mem_op")),
    ]
    if meta:
        rows += [
            ("metadata atoms", meta.get("meta_atoms")),
            ("granules / atom (co-location)", meta.get("colocation")),
            ("packed reuse frac", meta.get("packed_reuse_frac")),
            ("naive reuse frac", meta.get("naive_reuse_frac")),
            ("predicted efficacy", meta.get("predicted_efficacy")),
        ]
    table = "".join(
        f"<tr><td>{_esc(k)}</td><td>{_num(v) if v is not None else '-'}"
        "</td></tr>" for k, v in rows)
    cdfs = [("line", "cdf-1", line.get("reuse_cdf") or []),
            ("sector", "cdf-3", sector.get("reuse_cdf") or [])]
    if meta:
        cdfs.append(("metadata atom", "cdf-2", meta.get("reuse_cdf") or []))
    return ("<table><thead><tr><th>trace metric</th><th>value</th></tr>"
            f"</thead><tbody>{table}</tbody></table>" + _cdf_svg(cdfs))


def _inspect_runtime_block(runtime: Dict[str, Any]) -> str:
    parts: List[str] = []
    for label, data in sorted((runtime.get("caches") or {}).items()):
        misses = data.get("misses") or []
        conflicts = data.get("conflict_evictions") or []
        parts.append(
            f'<div class="heat-label">{_esc(label)} &#8212; '
            f'{data.get("num_sets")} sets &#215; {data.get("ways")} ways, '
            f'conflict-eviction share '
            f'{data.get("conflict_eviction_frac", 0.0):.1%}</div>'
            + _heat_strip(misses, "--series-1", f"{label} misses/set")
            + _heat_strip(conflicts, "--series-2",
                          f"{label} conflict evictions/set"))
    for label, data in sorted((runtime.get("mdcache") or {}).items()):
        parts.append(
            f'<div class="heat-label">{_esc(label)} &#8212; '
            f'{_num(data.get("lookups", 0))} lookups, '
            f'{_num(data.get("hits", 0))} hits, '
            f'{_num(data.get("colocation_hits", 0))} co-location hits '
            f'({data.get("colocation_hit_frac", 0.0):.1%} of hits served '
            "only because the reconstructed chunk layout packs "
            "neighbouring granules into one atom)</div>")
    for label, data in sorted((runtime.get("dram") or {}).items()):
        hits = data.get("row_hits") or []
        conflicts = data.get("row_conflicts") or []
        total = sum(hits) + sum(data.get("row_misses") or []) \
            + sum(conflicts)
        parts.append(
            f'<div class="heat-label">{_esc(label)} &#8212; '
            f'{data.get("banks")} banks, row hit rate '
            f'{data.get("row_hit_rate", 0.0):.1%}, conflict rate '
            f'{data.get("row_conflict_rate", 0.0):.1%} '
            f'({_num(total)} accesses)</div>'
            + _heat_strip(hits, "--series-3", f"{label} row hits/bank")
            + _heat_strip(conflicts, "--series-2",
                          f"{label} row conflicts/bank"))
    if not parts:
        return '<p class="empty">no run-time introspection data</p>'
    return "".join(parts)


def render_inspect_html(artifacts: Sequence[Dict[str, Any]],
                        title: str = "Memory-hierarchy introspection"
                        ) -> str:
    """Render ``--inspect-out`` artifacts into one self-contained HTML
    document: a cross-scheme metric table, then per-scheme reuse CDFs,
    set-conflict heatmaps and DRAM row-locality strips."""
    arts = list(artifacts)
    metric_keys = sorted({k for a in arts
                          for k in (a.get("metrics") or {})})
    blocks: List[str] = []
    if metric_keys and arts:
        head = "".join(f"<th>{_esc(a.get('scheme') or '?')}</th>"
                       for a in arts)
        rows = []
        for key in metric_keys:
            cells = "".join(
                f"<td>{_num((a.get('metrics') or {}).get(key))}"
                "</td>" if (a.get('metrics') or {}).get(key) is not None
                else "<td>-</td>" for a in arts)
            rows.append(f"<tr><td>{_esc(key)}</td>{cells}</tr>")
        blocks.append(
            '<section class="card"><h2>Locality metrics by scheme</h2>'
            f"<table><thead><tr><th>metric</th>{head}</tr></thead>"
            f'<tbody>{"".join(rows)}</tbody></table></section>')
    for art in arts:
        scheme = art.get("scheme") or "?"
        fidelity = art.get("fidelity") or "event"
        blocks.append(
            '<section class="card">'
            f"<h2>{_esc(scheme)} ({_esc(fidelity)} tier)</h2>"
            + _inspect_trace_block(art.get("trace"))
            + _inspect_runtime_block(art.get("runtime") or {})
            + "</section>")
    if not blocks:
        blocks.append('<section class="card">'
                      '<p class="empty">no artifacts</p></section>')
    workload = next((a.get("workload") for a in arts
                     if a.get("workload")), None)
    meta_bits = [f"{len(arts)} scheme(s)"]
    if workload:
        meta_bits.insert(0, f"workload {_esc(workload)}")
    return ("<!DOCTYPE html>\n"
            '<html lang="en"><head><meta charset="utf-8">'
            f"<title>{_esc(title)}</title>"
            f"<style>{_CSS}</style></head><body><main>"
            f"<h1>{_esc(title)}</h1>"
            f'<p class="meta">{" &#183; ".join(meta_bits)}</p>'
            + "".join(blocks) +
            "<footer>generated by <code>repro obs inspect</code> &#8212; "
            "fully self-contained (inline CSS + SVG, no network "
            "references)</footer>"
            "</main></body></html>\n")


def write_inspect_html(artifacts: Sequence[Dict[str, Any]], path,
                       title: str = "Memory-hierarchy introspection"
                       ) -> None:
    """Write :func:`render_inspect_html` output to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render_inspect_html(artifacts, title=title))
