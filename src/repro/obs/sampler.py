"""Time-series sampling of the statistics registry.

End-of-run aggregates hide dynamics: an mdcache that thrashes for the
first 10k cycles and then settles shows the same hit rate as one that
is mediocre throughout.  The :class:`MetricsSampler` snapshots every
stat in the :class:`~repro.sim.stats.StatsRegistry` every ``interval``
cycles and records *windowed* values:

* **counters** contribute their per-window delta (events in the
  window, not the running total);
* **gauges** contribute their level at sample time;
* **histograms** contribute their per-window count delta;
* **derived series** are computed per window: a ``<group>.hit_rate``
  for every cache-style group exposing hits/misses counters, and a
  ``<channel>.bus_utilization`` for every group exposing a
  ``bus_busy_cycles`` counter.

Sampler ticks are scheduled as engine *daemon* events so a sampler
never keeps the event queue alive after real work drains.

Export is one JSON object per line (:meth:`to_jsonl`) or CSV over the
union of observed keys (:meth:`to_csv`).  Zero-delta counter entries
are omitted from rows to keep output proportional to activity.
"""

from __future__ import annotations

import csv
import json
from typing import IO, Dict, List, Optional, Union

from repro.sim.engine import Simulator
from repro.sim.stats import Counter, Gauge, Histogram, StatGroup

#: Counter-name pairs that define a derived per-window hit rate.
_MISS_SUFFIXES = ("misses", "sector_misses", "line_misses")


class MetricsSampler:
    """Periodic windowed snapshots of a stats tree."""

    def __init__(self, sim: Simulator, stats: StatGroup, interval: int,
                 max_samples: int = 1_000_000):
        if interval < 1:
            raise ValueError("sample interval must be >= 1 cycle")
        self.sim = sim
        self.stats = stats
        self.interval = interval
        self.max_samples = max_samples
        self.samples: List[Dict[str, float]] = []
        self._prev: Dict[str, float] = {}
        self._prev_cycle = 0
        self._started = False

    # -- scheduling -----------------------------------------------------------

    def start(self) -> None:
        """Arm the sampler; the first window closes one interval in."""
        if self._started:
            return
        self._started = True
        self._prev_cycle = self.sim.now
        self._snapshot_baseline()
        self.sim.schedule_daemon(self.interval, self._tick)

    def _tick(self) -> None:
        self.record_window()
        if len(self.samples) < self.max_samples:
            self.sim.schedule_daemon(self.interval, self._tick)

    # -- sampling -------------------------------------------------------------

    def _snapshot_baseline(self) -> None:
        for path, stat in self.stats.walk():
            if isinstance(stat, Counter):
                self._prev[path] = stat.value
            elif isinstance(stat, Histogram):
                self._prev[path + ".count"] = stat.count

    def record_window(self) -> Dict[str, float]:
        """Close the current window and append its sample row."""
        now = self.sim.now
        window = max(1, now - self._prev_cycle)
        row: Dict[str, float] = {"cycle": now, "window_cycles": window}
        hits: Dict[str, float] = {}
        misses: Dict[str, float] = {}
        for path, stat in self.stats.walk():
            if isinstance(stat, Counter):
                delta = stat.value - self._prev.get(path, 0)
                self._prev[path] = stat.value
                if delta:
                    row[path] = delta
                self._note_rate_parts(path, delta, hits, misses)
                if path.endswith(".bus_busy_cycles"):
                    group = path[: -len(".bus_busy_cycles")]
                    row[group + ".bus_utilization"] = round(
                        min(1.0, delta / window), 6)
            elif isinstance(stat, Gauge):
                row[path] = stat.value
            elif isinstance(stat, Histogram):
                key = path + ".count"
                delta = stat.count - self._prev.get(key, 0)
                self._prev[key] = stat.count
                if delta:
                    row[key] = delta
        for group, hit_delta in hits.items():
            denominator = hit_delta + misses.get(group, 0)
            if denominator > 0:
                row[group + ".hit_rate"] = round(hit_delta / denominator, 6)
        self.samples.append(row)
        self._prev_cycle = now
        return row

    @staticmethod
    def _note_rate_parts(path: str, delta: float, hits: Dict[str, float],
                         misses: Dict[str, float]) -> None:
        """Accumulate hit/miss deltas per owning group for derived rates."""
        group, _, leaf = path.rpartition(".")
        if leaf == "hits":
            hits[group] = hits.get(group, 0) + delta
        elif leaf in _MISS_SUFFIXES:
            misses[group] = misses.get(group, 0) + delta

    def finish(self) -> None:
        """Close the trailing partial window, if it saw any time."""
        if self._started and self.sim.now > self._prev_cycle:
            self.record_window()

    # -- export ---------------------------------------------------------------

    def series(self, key: str) -> List[float]:
        """One metric across all windows (absent -> 0.0)."""
        return [row.get(key, 0.0) for row in self.samples]

    def keys(self) -> List[str]:
        """Union of keys across all sample rows, sorted."""
        union = set()
        for row in self.samples:
            union.update(row)
        return sorted(union)

    def to_jsonl(self, destination: Union[str, IO[str]]) -> int:
        """Write one JSON object per window; returns rows written."""
        if hasattr(destination, "write"):
            for row in self.samples:
                destination.write(json.dumps(row, sort_keys=True) + "\n")
        else:
            with open(destination, "w") as fh:
                self.to_jsonl(fh)
        return len(self.samples)

    def to_csv(self, destination: Union[str, IO[str]]) -> int:
        """Write a dense CSV over the key union; returns rows written."""
        if not hasattr(destination, "write"):
            with open(destination, "w", newline="") as fh:
                return self.to_csv(fh)
        fieldnames = self.keys()
        writer = csv.DictWriter(destination, fieldnames=fieldnames,
                                restval=0.0)
        writer.writeheader()
        for row in self.samples:
            writer.writerow(row)
        return len(self.samples)
