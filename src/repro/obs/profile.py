"""Latency-breakdown and hot-component reporting.

Consumes a finished :class:`~repro.core.results.RunResult` produced
with latency attribution enabled and renders:

* a **latency breakdown table** — per-L2-request cycles decomposed
  into data, protection-metadata and queue/transit components that sum
  to the measured total (the attribution counters preserve the sum
  identity exactly; see :mod:`repro.obs.latency`);
* a **hottest-components table** — every modeled resource ranked by
  per-cycle occupancy (DRAM data-bus busy fraction, crossbar port busy
  fraction, L2 requests/cycle, SM issue slots/cycle), which is the
  first place to look when deciding what a perf PR should attack.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.analysis.tables import format_table

#: component-pattern -> (display kind, occupancy numerator keys)
_OCCUPANCY_RULES: List[Tuple[str, str, Tuple[str, ...]]] = [
    (r"^(dram\d+)\.bus_busy_cycles$", "DRAM data bus", ()),
    (r"^(xbar\.(?:req|rsp)\d+)\.busy_cycles$", "crossbar port", ()),
    (r"^(sm\d+)\.instructions$", "SM issue", ()),
]


def latency_breakdown_rows(latency: Dict[str, float]) -> List[List[object]]:
    """Rows: component, total cycles, mean cycles/request, share of total."""
    total = latency.get("total_cycles", 0)
    requests = latency.get("requests", 0) or 1
    rows = []
    for label, key in (("data", "data_cycles"),
                       ("metadata", "metadata_cycles"),
                       ("queue/transit", "queue_cycles")):
        cycles = latency.get(key, 0)
        rows.append([label, int(cycles), round(cycles / requests, 1),
                     f"{cycles / total:.1%}" if total else "-"])
    rows.append(["total", int(total), round(total / requests, 1), "100.0%"])
    return rows


def hottest_components(stats: Dict[str, float], cycles: int,
                       k: int = 8) -> List[List[object]]:
    """Top-``k`` resources by per-cycle occupancy.

    Occupancy is dimensionless: busy-cycles / run-cycles for buses and
    ports, operations / run-cycles for structures that accept one
    operation per cycle (L2 slices, SM issue).  A value near 1.0 is a
    saturated resource; the sorted table is the bottleneck shortlist.
    """
    if cycles <= 0:
        return []
    found: List[Tuple[float, str, str]] = []
    for pattern, kind, _ in _OCCUPANCY_RULES:
        regex = re.compile(pattern)
        for key, value in stats.items():
            match = regex.match(key)
            if match:
                found.append((value / cycles, match.group(1), kind))
    # L2 slices: requests per cycle across the three request kinds.
    l2: Dict[str, float] = {}
    for key, value in stats.items():
        match = re.match(r"^(l2s\d+)\.(load|store|atomic)_requests$", key)
        if match:
            l2[match.group(1)] = l2.get(match.group(1), 0) + value
    for name, requests in l2.items():
        found.append((requests / cycles, name, "L2 slice requests"))
    # Dedicated metadata caches, when the scheme has them.
    mdc: Dict[str, float] = {}
    for key, value in stats.items():
        match = re.match(r"^(.*\bmdc\d+)\.(hits|sector_misses|line_misses)$",
                         key)
        if match:
            mdc[match.group(1)] = mdc.get(match.group(1), 0) + value
    for name, accesses in mdc.items():
        found.append((accesses / cycles, name, "metadata cache accesses"))
    found.sort(key=lambda row: (-row[0], row[1]))
    return [[name, kind, f"{occ:.1%}"] for occ, name, kind in found[:k]]


def render_profile(result, k: int = 8) -> str:
    """The full profile report for one run."""
    parts = []
    latency = getattr(result, "latency", None) or {}
    if latency.get("requests"):
        parts.append(format_table(
            ["component", "cycles", "mean/request", "share"],
            latency_breakdown_rows(latency),
            title=(f"latency breakdown: {result.workload} / {result.scheme} "
                   f"({int(latency['requests'])} L2 requests)")))
        parts.append(
            f"percentiles: p50={latency.get('total_p50', 0):.0f} "
            f"p95={latency.get('total_p95', 0):.0f} "
            f"mean={latency.get('total_mean', 0):.1f} cycles; "
            f"l2 hits {int(latency.get('l2_hit_requests', 0))}"
            f"/{int(latency['requests'])}")
    else:
        parts.append("no attributed requests (latency attribution disabled "
                     "or no L1 misses)")
    hot = hottest_components(result.stats, result.cycles, k=k)
    if hot:
        parts.append(format_table(
            ["component", "kind", "occupancy"], hot,
            title=f"hottest components (top {min(k, len(hot))})"))
    return "\n\n".join(parts)


def check_breakdown_sums(latency: Dict[str, float],
                         tolerance: float = 0.01) -> bool:
    """True when data+metadata+queue match total within ``tolerance``."""
    total = latency.get("total_cycles", 0)
    if not total:
        return True
    parts = (latency.get("data_cycles", 0) + latency.get("metadata_cycles", 0)
             + latency.get("queue_cycles", 0))
    return abs(parts - total) <= tolerance * total
