"""Opt-in memory-hierarchy introspection.

:class:`MemoryInspector` is the run-time half of the "why does this
scheme hit or thrash" story (the trace-level half lives in
:mod:`repro.analysis.locality`).  It attaches lightweight per-set,
per-bank and per-structure views to the hardware models *after*
construction:

* :class:`CacheIntrospection` — per-set access/miss/eviction counters
  for a :class:`~repro.cache.sectored.SectoredCache` (both the L2
  slices and a dedicated metadata cache's SRAM array), with every
  eviction classified **conflict** (a free way existed somewhere else
  in the cache — set imbalance, not capacity, displaced the line) or
  **capacity** (every way in the cache was occupied).
* :class:`MdcIntrospection` — reconstruction-efficacy counters for a
  :class:`~repro.protection.mdcache.DedicatedMetadataCache`: a
  *colocation hit* is a readable hit on a metadata atom that none of
  the requesting granules themselves brought in or touched — locality
  a naive one-private-atom-per-granule layout could not have had.
* :class:`DramIntrospection` — per-bank row-buffer locality for a
  :class:`~repro.dram.channel.MemoryChannel`: **hit** (open row
  matched), **miss** (bank had no open row), **conflict** (a different
  row was open and had to be precharged).

The contract is zero impact when off: every hook site in the models
guards on an ``_insp is not None`` attribute that only this module
ever sets, no simulation counter or event is touched, and the
introspection data is exported through its own artifact — never
through ``stats.flatten()`` — so disabled runs are bit-identical on
both fidelity tiers (``tests/test_inspect.py`` proves it, mirroring
the flame-profiler parity test).
"""

from __future__ import annotations

from typing import Dict, List, Optional

#: Version of the ``--inspect-out`` JSON artifact schema.
INSPECT_FORMAT = 1


class CacheIntrospection:
    """Per-set counters for one sectored cache (heatmap columns)."""

    __slots__ = ("label", "num_sets", "ways", "accesses", "misses",
                 "evictions", "conflict_evictions", "fills",
                 "invalidations", "hiwater")

    def __init__(self, label: str, num_sets: int, ways: int):
        self.label = label
        self.num_sets = num_sets
        self.ways = ways
        self.accesses = [0] * num_sets
        self.misses = [0] * num_sets
        self.evictions = [0] * num_sets
        self.conflict_evictions = [0] * num_sets
        self.fills = [0] * num_sets
        self.invalidations = [0] * num_sets
        #: Most ways ever simultaneously occupied, per set.
        self.hiwater = [0] * num_sets

    # -- hot-path hooks (guarded by ``_insp is not None`` in the model) --

    def access(self, set_idx: int, missed: bool) -> None:
        self.accesses[set_idx] += 1
        if missed:
            self.misses[set_idx] += 1

    def evicted(self, set_idx: int, conflict: bool) -> None:
        self.evictions[set_idx] += 1
        if conflict:
            self.conflict_evictions[set_idx] += 1

    def filled(self, set_idx: int, occupied: int) -> None:
        self.fills[set_idx] += 1
        if occupied > self.hiwater[set_idx]:
            self.hiwater[set_idx] = occupied

    def invalidated(self, set_idx: int) -> None:
        self.invalidations[set_idx] += 1

    # -- export ----------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        evictions = sum(self.evictions)
        conflicts = sum(self.conflict_evictions)
        return {
            "num_sets": self.num_sets,
            "ways": self.ways,
            "accesses": list(self.accesses),
            "misses": list(self.misses),
            "evictions": list(self.evictions),
            "conflict_evictions": list(self.conflict_evictions),
            "fills": list(self.fills),
            "invalidations": list(self.invalidations),
            "hiwater": list(self.hiwater),
            "conflict_eviction_frac": round(conflicts / evictions, 4)
            if evictions else 0.0,
        }


class MdcIntrospection:
    """Reconstruction-efficacy counters for a dedicated metadata cache."""

    __slots__ = ("label", "lookups", "hits", "colocation_hits", "fills",
                 "_owners")

    def __init__(self, label: str):
        self.label = label
        self.lookups = 0
        self.hits = 0
        self.colocation_hits = 0
        self.fills = 0
        # atom line -> granules that filled or touched it since fill.
        self._owners: Dict[int, set] = {}

    def note_lookup(self, line_addr: int, hit: bool, granules) -> None:
        self.lookups += 1
        if not hit:
            return
        self.hits += 1
        owners = self._owners.get(line_addr)
        if owners is None:
            return
        if granules and not any(g in owners for g in granules):
            # The packed chunk layout served a granule that never
            # touched this atom — a naive private-atom layout would
            # have gone to DRAM.
            self.colocation_hits += 1
        owners.update(granules)

    def note_fill(self, line_addr: int, granules,
                  evicted_line: Optional[int]) -> None:
        self.fills += 1
        if evicted_line is not None:
            self._owners.pop(evicted_line, None)
        self._owners[line_addr] = set(granules)

    def note_invalidate(self, line_addr: int) -> None:
        self._owners.pop(line_addr, None)

    def to_dict(self) -> Dict[str, object]:
        return {
            "lookups": self.lookups,
            "hits": self.hits,
            "colocation_hits": self.colocation_hits,
            "fills": self.fills,
            "colocation_hit_frac": round(self.colocation_hits / self.hits, 4)
            if self.hits else 0.0,
        }


class DramIntrospection:
    """Per-bank row-buffer locality for one memory channel."""

    __slots__ = ("label", "banks", "row_hits", "row_misses",
                 "row_conflicts")

    def __init__(self, label: str, banks: int):
        self.label = label
        self.banks = banks
        self.row_hits = [0] * banks
        self.row_misses = [0] * banks
        self.row_conflicts = [0] * banks

    def to_dict(self) -> Dict[str, object]:
        hits = sum(self.row_hits)
        misses = sum(self.row_misses)
        conflicts = sum(self.row_conflicts)
        total = hits + misses + conflicts
        return {
            "banks": self.banks,
            "row_hits": list(self.row_hits),
            "row_misses": list(self.row_misses),
            "row_conflicts": list(self.row_conflicts),
            "row_hit_rate": round(hits / total, 4) if total else 0.0,
            "row_conflict_rate": round(conflicts / total, 4)
            if total else 0.0,
        }


class MemoryInspector:
    """The introspection collector one observed run carries.

    Built by :func:`repro.obs.hub.make_observability` when an
    ``--inspect-out`` style flag is set; :class:`~repro.core.system.
    GpuSystem` calls the ``watch_*`` methods after construction and
    :meth:`set_trace` once the workload's columnar artifact exists.
    Like the flame profiler it is counter-based, so it is allowed on
    the clock-free functional tier (the DRAM row view is simply absent
    there — :class:`~repro.sim.functional.FunctionalChannel` has no
    banks).
    """

    def __init__(self) -> None:
        self.caches: Dict[str, CacheIntrospection] = {}
        self.mdcaches: Dict[str, MdcIntrospection] = {}
        self.drams: Dict[str, DramIntrospection] = {}
        self._compiled = None
        self._machine_sms = 0
        self._layout = None
        self._trace_report: Optional[Dict[str, object]] = None

    # -- attachment (called by the system at build/load time) -------------

    def watch_cache(self, label: str, cache) -> CacheIntrospection:
        view = CacheIntrospection(label, cache.num_sets, cache.ways)
        cache._insp = view
        self.caches[label] = view
        return view

    def watch_mdcache(self, label: str, mdc) -> MdcIntrospection:
        view = MdcIntrospection(label)
        mdc._insp = view
        self.mdcaches[label] = view
        # The SRAM array behind it gets a set heatmap of its own.
        self.watch_cache(label, mdc._cache)
        return view

    def watch_dram(self, label: str, channel) -> DramIntrospection:
        view = DramIntrospection(label, channel.timing.banks)
        channel._insp = view
        self.drams[label] = view
        return view

    def set_trace(self, compiled, machine_sms: int, layout=None) -> None:
        """Hand over the columnar artifact for trace-level analytics.

        ``layout`` (the scheme's inline-ECC layout) enables the
        metadata-locality prediction; pass ``None`` for schemes with no
        inline metadata traffic (``none``, ``sideband``).
        """
        self._compiled = compiled
        self._machine_sms = machine_sms
        self._layout = layout
        self._trace_report = None

    # -- reporting ---------------------------------------------------------

    def trace_report(self) -> Optional[Dict[str, object]]:
        """The :func:`repro.analysis.locality.trace_analytics` report
        (memoized; ``None`` when no columnar trace was available)."""
        if self._trace_report is None and self._compiled is not None:
            from repro.analysis.locality import trace_analytics
            self._trace_report = trace_analytics(
                self._compiled, self._machine_sms, layout=self._layout)
        return self._trace_report

    def key_metrics(self) -> Dict[str, float]:
        """Scalar locality metrics for the run ledger."""
        metrics: Dict[str, float] = {}
        report = self.trace_report()
        if report is not None:
            from repro.analysis.locality import key_trace_metrics
            metrics.update(key_trace_metrics(report))
        hits = sum(v.hits for v in self.mdcaches.values())
        if hits:
            coloc = sum(v.colocation_hits for v in self.mdcaches.values())
            metrics["mdc_colocation_frac"] = round(coloc / hits, 4)
        return metrics

    def runtime_section(self) -> Dict[str, object]:
        return {
            "caches": {k: v.to_dict() for k, v in self.caches.items()},
            "mdcache": {k: v.to_dict() for k, v in self.mdcaches.items()},
            "dram": {k: v.to_dict() for k, v in self.drams.items()},
        }

    def artifact(self, workload: Optional[str] = None,
                 scheme: Optional[str] = None,
                 fidelity: Optional[str] = None) -> Dict[str, object]:
        """The full ``--inspect-out`` JSON artifact (see
        docs/OBSERVABILITY.md "Memory-hierarchy introspection")."""
        return {
            "format": INSPECT_FORMAT,
            "workload": workload,
            "scheme": scheme,
            "fidelity": fidelity,
            "trace": self.trace_report(),
            "runtime": self.runtime_section(),
            "metrics": self.key_metrics(),
        }
