"""Live progress / heartbeat channel for multi-process runs.

A running ``compare --workers N`` or ``campaign`` fans cells out to
worker processes; until this module, the parent was a black box until
the last cell returned.  The channel is a *progress directory*:

* every participant appends JSONL records to its **own per-pid file**
  (``<role>-<pid>.jsonl``) with the same atomic ``O_APPEND`` /
  torn-tail-tolerant discipline as the run ledger, so there is no lock,
  no server and no cross-process coordination of any kind;
* **cell lifecycle** records (``start`` / ``done`` / ``failed`` /
  ``cached`` / ``retry``) are written by whoever learns the fact first
  — pool workers write their own start/done, the campaign parent
  journals its workers' outcomes, cache hits are recorded parent-side;
* **heartbeat** records are appended every ``interval`` host seconds
  by a daemon thread in each worker while a cell is in flight, so a
  hung or killed worker is visible as a *stale* pid;
* a ``plan`` record from the parent fixes the denominator (total
  cells) for percent-done and ETA.

:func:`snapshot` folds every record in the directory into one
:class:`ProgressSnapshot` (done/failed/cached/in-flight counts,
aggregate events/sec, cache hit ratio, EWMA-smoothed ETA, stale-worker
list); :func:`render_top` formats a snapshot as a plain-text frame —
no TTY control codes, so it works in CI logs, ``watch``, and pipes
alike.  The ``obs top <dir>`` subcommand and the ``--live`` flags on
``compare``/``campaign`` are thin wrappers over these two calls.

The channel observes the *host-side* execution stack only — nothing
here touches the simulated machine, so progress reporting can never
change simulation counters.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.obs.structlog import append_jsonl, read_jsonl

#: Environment variable pointing workers at the progress directory.
PROGRESS_ENV = "REPRO_PROGRESS_DIR"

#: Environment variable overriding the heartbeat interval (seconds).
HEARTBEAT_ENV = "REPRO_HEARTBEAT_INTERVAL"

#: A worker with an in-flight cell and no heartbeat for this many
#: seconds is reported stale (overridable per call / per CLI flag).
DEFAULT_STALE_AFTER = 10.0

#: Terminal cell statuses (everything else keeps the cell in flight).
_TERMINAL = frozenset({"done", "failed", "cached", "quarantined"})


class ProgressWriter:
    """Appends progress records to this process's file in the
    progress directory.

    ``role`` distinguishes the parent (``parent``), pool workers
    (``worker``) and campaign subprocesses in the file name — purely
    for humans; the aggregator reads every ``*.jsonl`` file.
    """

    def __init__(self, progress_dir: Union[str, os.PathLike],
                 role: str = "worker"):
        self.dir = Path(progress_dir)
        self.role = role
        self.path = self.dir / f"{role}-{os.getpid()}.jsonl"
        self._warned = False

    def _write(self, record: Dict[str, Any]) -> None:
        record.setdefault("ts", round(time.time(), 3))
        record.setdefault("pid", os.getpid())
        try:
            self.dir.mkdir(parents=True, exist_ok=True)
            append_jsonl(self.path, record)
        except OSError as exc:
            if not self._warned:
                self._warned = True
                print(f"warning: progress append to {self.path} failed: "
                      f"{exc}", file=sys.stderr)

    def plan(self, total_cells: int, **fields: Any) -> None:
        """Fix the denominator: how many cells this run will resolve."""
        self._write({"kind": "plan", "total": int(total_cells), **fields})

    def heartbeat(self, **fields: Any) -> None:
        self._write({"kind": "heartbeat", **fields})

    def cell(self, cell: str, status: str, **fields: Any) -> None:
        """One cell lifecycle transition (start/done/failed/cached/
        retry)."""
        self._write({"kind": "cell", "cell": cell, "status": status,
                     **fields})


class HeartbeatThread:
    """Daemon thread appending heartbeats while host work is in flight.

    Wall-clock based and entirely outside the simulated machine; start
    it around a cell (pool workers) or a whole worker process
    (campaign subprocesses).  ``stop()`` writes one final heartbeat so
    the last-seen timestamp covers the full busy window.
    """

    def __init__(self, writer: ProgressWriter, interval: float = 1.0):
        self.writer = writer
        self.interval = max(0.05, float(interval))
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "HeartbeatThread":
        self.writer.heartbeat()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-heartbeat")
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.writer.heartbeat()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        self.writer.heartbeat()


def writer_from_env(role: str = "worker") -> Optional[ProgressWriter]:
    """A writer for ``$REPRO_PROGRESS_DIR``, or None when unset."""
    progress_dir = os.environ.get(PROGRESS_ENV, "").strip()
    if not progress_dir:
        return None
    return ProgressWriter(progress_dir, role=role)


def heartbeat_interval() -> float:
    """The configured heartbeat interval (``$REPRO_HEARTBEAT_INTERVAL``,
    default 1.0s)."""
    raw = os.environ.get(HEARTBEAT_ENV, "").strip()
    try:
        return max(0.05, float(raw)) if raw else 1.0
    except ValueError:
        return 1.0


# -- aggregation --------------------------------------------------------------


def read_progress(progress_dir: Union[str, os.PathLike]
                  ) -> List[Dict[str, Any]]:
    """Every readable record in the directory, ordered by timestamp.

    Files are read with the shared torn-tail-tolerant JSONL reader; a
    record mid-write by a live worker is simply skipped this frame and
    picked up on the next.
    """
    directory = Path(progress_dir)
    records: List[Dict[str, Any]] = []
    if not directory.is_dir():
        return records
    for path in sorted(directory.glob("*.jsonl")):
        records.extend(read_jsonl(path))
    records.sort(key=lambda r: (r.get("ts") or 0.0))
    return records


@dataclass
class CellState:
    """Latest known state of one grid cell."""

    cell: str
    status: str
    pid: Optional[int] = None
    since: Optional[float] = None      # ts of the latest transition
    events: int = 0
    host_seconds: float = 0.0
    error: Optional[str] = None
    attempts: int = 0


@dataclass
class ProgressSnapshot:
    """One folded view of a progress directory (see :func:`snapshot`)."""

    total: int = 0
    done: int = 0
    failed: int = 0
    cached: int = 0
    #: Crash-looping cells parked on the campaign quarantine list.
    quarantined: int = 0
    #: Cells whose latest transition is ``start``.
    in_flight: List[CellState] = field(default_factory=list)
    #: Cells retried and waiting for their next attempt.
    retrying: List[CellState] = field(default_factory=list)
    failed_cells: List[CellState] = field(default_factory=list)
    quarantined_cells: List[CellState] = field(default_factory=list)
    #: pid -> last heartbeat-or-record timestamp.
    workers: Dict[int, float] = field(default_factory=dict)
    #: pids with an in-flight cell and no sign of life for
    #: ``stale_after`` seconds.
    stale_workers: List[int] = field(default_factory=list)
    #: Engine events executed by completed cells.
    events: int = 0
    #: Aggregate engine throughput: completed-cell events over
    #: completed-cell host seconds (sums across workers).
    events_per_sec: float = 0.0
    #: cached / resolved — how much of the grid the result cache
    #: absorbed.
    cache_hit_ratio: float = 0.0
    #: EWMA-smoothed seconds per simulated cell.
    ewma_cell_seconds: float = 0.0
    #: Remaining-work estimate (None until one cell has finished).
    eta_seconds: Optional[float] = None
    #: Wall seconds from the first record to ``now``.
    elapsed_seconds: float = 0.0
    #: ``now`` the snapshot was taken against (for rendering).
    now: float = 0.0

    @property
    def resolved(self) -> int:
        return self.done + self.failed + self.cached + self.quarantined

    @property
    def remaining(self) -> int:
        return max(0, self.total - self.resolved)


#: EWMA smoothing factor for per-cell durations (recent cells dominate
#: without single-cell jitter owning the ETA).
EWMA_ALPHA = 0.3


def snapshot(records: List[Dict[str, Any]],
             now: Optional[float] = None,
             stale_after: float = DEFAULT_STALE_AFTER) -> ProgressSnapshot:
    """Fold progress records into one :class:`ProgressSnapshot`.

    Pure and deterministic given ``records`` and ``now`` — the tests
    feed canned directories and pinned clocks.
    """
    snap = ProgressSnapshot()
    snap.now = now if now is not None else time.time()
    cells: Dict[str, CellState] = {}
    first_ts: Optional[float] = None
    durations: List[float] = []     # completed-cell host seconds, ts order
    sim_seconds = 0.0

    for rec in records:
        ts = rec.get("ts") or 0.0
        if first_ts is None or ts < first_ts:
            first_ts = ts
        pid = rec.get("pid")
        if isinstance(pid, int):
            snap.workers[pid] = max(snap.workers.get(pid, 0.0), ts)
        kind = rec.get("kind")
        if kind == "plan":
            snap.total = max(snap.total, int(rec.get("total") or 0))
        elif kind == "cell":
            cell_id = str(rec.get("cell"))
            state = cells.get(cell_id)
            if state is None:
                state = cells[cell_id] = CellState(cell_id, "pending")
            state.status = str(rec.get("status") or "?")
            state.since = ts
            if isinstance(pid, int):
                state.pid = pid
            if rec.get("error"):
                state.error = str(rec["error"])
            state.attempts = int(rec.get("attempt") or state.attempts)
            if state.status == "done":
                state.events = int(rec.get("events") or 0)
                state.host_seconds = float(rec.get("host_seconds") or 0.0)
                durations.append(state.host_seconds)
                snap.events += state.events
                sim_seconds += state.host_seconds

    for state in cells.values():
        if state.status == "done":
            snap.done += 1
        elif state.status == "failed":
            snap.failed += 1
        elif state.status == "cached":
            snap.cached += 1
        elif state.status == "quarantined":
            snap.quarantined += 1
        elif state.status == "retry":
            snap.retrying.append(state)
        elif state.status == "start":
            snap.in_flight.append(state)
    snap.in_flight.sort(key=lambda s: (s.since or 0.0, s.cell))
    snap.retrying.sort(key=lambda s: (s.since or 0.0, s.cell))
    snap.failed_cells = sorted(
        (s for s in cells.values() if s.status == "failed"),
        key=lambda s: (s.since or 0.0, s.cell))
    snap.quarantined_cells = sorted(
        (s for s in cells.values() if s.status == "quarantined"),
        key=lambda s: (s.since or 0.0, s.cell))

    snap.total = max(snap.total, len(cells))
    if snap.resolved:
        snap.cache_hit_ratio = snap.cached / snap.resolved
    if sim_seconds > 0:
        snap.events_per_sec = snap.events / sim_seconds
    if first_ts is not None:
        snap.elapsed_seconds = max(0.0, snap.now - first_ts)

    ewma = 0.0
    for seconds in durations:
        ewma = seconds if ewma == 0.0 \
            else EWMA_ALPHA * seconds + (1 - EWMA_ALPHA) * ewma
    snap.ewma_cell_seconds = ewma

    live_pids = {pid for pid, last in snap.workers.items()
                 if snap.now - last <= stale_after}
    snap.stale_workers = sorted(
        {s.pid for s in snap.in_flight
         if s.pid is not None and s.pid not in live_pids})

    if durations and snap.remaining:
        lanes = max(1, len(live_pids) or len(snap.in_flight) or 1)
        snap.eta_seconds = snap.remaining * ewma / lanes
    elif snap.remaining == 0 and snap.total:
        snap.eta_seconds = 0.0
    return snap


# -- rendering ---------------------------------------------------------------


def _fmt_duration(seconds: Optional[float]) -> str:
    if seconds is None:
        return "?"
    seconds = max(0.0, seconds)
    if seconds < 60:
        return f"{seconds:.0f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


def _fmt_rate(per_sec: float) -> str:
    if per_sec >= 1e6:
        return f"{per_sec / 1e6:.2f}M/s"
    if per_sec >= 1e3:
        return f"{per_sec / 1e3:.1f}k/s"
    return f"{per_sec:.0f}/s"


def render_top(snap: ProgressSnapshot, title: str = "repro fleet",
               width: int = 72, max_rows: int = 12) -> str:
    """One plain-text frame of the live dashboard.

    No cursor movement or color codes: frames concatenate cleanly in
    CI logs and non-TTY pipes; interactive callers separate frames
    with a blank line.
    """
    bar_width = max(10, width - 30)
    fraction = (snap.resolved / snap.total) if snap.total else 0.0
    filled = int(round(fraction * bar_width))
    bar = "#" * filled + "." * (bar_width - filled)
    lines = [
        f"== {title} ==",
        f"[{bar}] {snap.resolved}/{snap.total} cells "
        f"({fraction:.0%})",
        f"done {snap.done}  failed {snap.failed}  cached {snap.cached}  "
        f"quarantined {snap.quarantined}  "
        f"in-flight {len(snap.in_flight)}  retrying {len(snap.retrying)}",
        f"cache hit ratio {snap.cache_hit_ratio:.0%}  "
        f"events {snap.events:,}  agg {_fmt_rate(snap.events_per_sec)}  "
        f"elapsed {_fmt_duration(snap.elapsed_seconds)}  "
        f"eta {_fmt_duration(snap.eta_seconds)}",
    ]
    if snap.workers:
        lines.append(f"workers: {len(snap.workers)} seen"
                     + (f", STALE pids {snap.stale_workers}"
                        if snap.stale_workers else ""))
    for state in snap.in_flight[:max_rows]:
        age = _fmt_duration(snap.now - state.since
                            if state.since is not None else None)
        stale = " [stale]" if state.pid in snap.stale_workers else ""
        lines.append(f"  RUN  {state.cell:<30} pid {state.pid or '?':<8} "
                     f"{age:>6}{stale}")
    if len(snap.in_flight) > max_rows:
        lines.append(f"  ... {len(snap.in_flight) - max_rows} more in flight")
    for state in snap.retrying[:max_rows]:
        lines.append(f"  WAIT {state.cell:<30} retry (attempt "
                     f"{state.attempts or '?'}): {state.error or ''}")
    for state in snap.failed_cells[:max_rows]:
        lines.append(f"  FAIL {state.cell:<30} {state.error or ''}")
    for state in snap.quarantined_cells[:max_rows]:
        lines.append(f"  QUAR {state.cell:<30} {state.error or ''}")
    return "\n".join(lines)


class LiveRenderer:
    """Background thread printing :func:`render_top` frames.

    ``interval <= 0`` selects *single-frame mode*: nothing prints
    during the run; the one final frame comes from :meth:`stop` —
    the CI-friendly configuration.
    """

    def __init__(self, progress_dir: Union[str, os.PathLike],
                 interval: float = 1.0, title: str = "repro fleet",
                 out=None, stale_after: float = DEFAULT_STALE_AFTER):
        self.progress_dir = Path(progress_dir)
        self.interval = float(interval)
        self.title = title
        self.out = out if out is not None else sys.stdout
        self.stale_after = stale_after
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def frame(self) -> str:
        snap = snapshot(read_progress(self.progress_dir),
                        stale_after=self.stale_after)
        return render_top(snap, title=self.title)

    def _print_frame(self) -> None:
        print(self.frame(), file=self.out)
        print(file=self.out)

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self._print_frame()

    def start(self) -> "LiveRenderer":
        if self.interval > 0:
            self._thread = threading.Thread(target=self._run, daemon=True,
                                            name="repro-live-top")
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop redrawing and print the final frame."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        self._print_frame()


def summary_dict(snap: ProgressSnapshot) -> Dict[str, Any]:
    """The final progress summary recorded into the run ledger
    (see :func:`repro.obs.ledger.record_from_session`)."""
    return {
        "cells_total": snap.total,
        "cells_done": snap.done,
        "cells_failed": snap.failed,
        "cells_cached": snap.cached,
        "cells_quarantined": snap.quarantined,
        "cache_hit_ratio": round(snap.cache_hit_ratio, 4),
        "events": snap.events,
        "events_per_sec": round(snap.events_per_sec),
        "wall_seconds": round(snap.elapsed_seconds, 3),
    }
