"""Cross-run telemetry ledger.

Everything else in this package observes *one* run; this module gives
the repo memory *across* runs.  A :class:`RunLedger` is an append-only
JSONL file (default ``<cache dir>/ledger.jsonl``) that every
:class:`~repro.analysis.harness.ExperimentHarness` cell, campaign cell
and ``benchmarks/bench_engine.py`` invocation appends one record to —
full provenance per record (git SHA, model version, config hash,
cached-vs-simulated flag) plus the metrics the regression sentinel
(:mod:`repro.obs.regress`) and the HTML report
(:mod:`repro.obs.htmlreport`) consume.

Durability contract (same discipline as the campaign journal):

* **Appends are atomic** — one ``O_APPEND`` write of one complete
  line, fsynced, so concurrent appenders interleave whole records and
  a killed process never interleaves half-records.
* **A torn tail is tolerated** — a record cut short by a crash (no
  trailing newline, or a partial JSON line) is skipped on read and
  *healed* on the next append, which starts a fresh line instead of
  gluing onto the fragment.
* **The index is derived** — ``<ledger>.idx.json`` is a pure cache of
  per-cell counts and latest records, rewritten atomically; when its
  recorded byte size disagrees with the JSONL it is rebuilt by a full
  scan, so it can always be deleted with no data loss.

Disable ledger writes entirely with ``REPRO_LEDGER=off`` (or point
``REPRO_LEDGER`` at an alternate path).
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.obs.structlog import append_jsonl, read_jsonl

#: On-disk record format; bump on incompatible schema changes.
LEDGER_FORMAT = 1

#: Environment variable: a path overrides the default ledger location;
#: ``off`` / ``0`` / ``none`` / ``disabled`` turns the ledger off.
LEDGER_ENV = "REPRO_LEDGER"

_OFF_VALUES = {"off", "0", "none", "disabled", ""}

_GIT_SHA_CACHE: List[Optional[str]] = []


def default_ledger_path() -> Optional[Path]:
    """The ledger location, or None when disabled via the environment.

    ``$REPRO_LEDGER`` (path or off-switch), else ``ledger.jsonl``
    inside the result-cache directory (``$REPRO_CACHE_DIR`` /
    ``$XDG_CACHE_HOME/repro`` / ``~/.cache/repro``) so run history and
    cached results travel together.
    """
    env = os.environ.get(LEDGER_ENV)
    if env is not None:
        if env.strip().lower() in _OFF_VALUES:
            return None
        return Path(env)
    from repro.analysis.result_cache import default_cache_dir

    return default_cache_dir() / "ledger.jsonl"


def git_sha() -> Optional[str]:
    """The repo's HEAD commit (cached per process); None outside git."""
    if not _GIT_SHA_CACHE:
        sha: Optional[str] = None
        try:
            out = subprocess.run(
                ["git", "rev-parse", "HEAD"], capture_output=True,
                text=True, timeout=5,
                cwd=os.path.dirname(os.path.abspath(__file__)))
            if out.returncode == 0:
                sha = out.stdout.strip() or None
        except (OSError, subprocess.SubprocessError):
            sha = None
        _GIT_SHA_CACHE.append(sha)
    return _GIT_SHA_CACHE[0]


# -- record builders ---------------------------------------------------------


def record_from_result(result, *, label: str = "harness",
                       config=None, scale: Optional[float] = None,
                       seed: Optional[int] = None,
                       workload_params: Optional[Dict[str, Any]] = None,
                       cached: bool = False,
                       log_path: Optional[str] = None) -> Dict[str, Any]:
    """A ledger record for one finished
    :class:`~repro.core.results.RunResult`.

    ``config`` (a :class:`~repro.core.config.SystemConfig`) adds the
    content hash the persistent result cache would file this cell
    under — the strongest provenance link a record can carry.
    ``log_path`` links the record to the structured log
    (:mod:`repro.obs.structlog`) that narrates the run, so
    ``obs history`` can point from a cell straight to its events.

    Functional-fidelity results are distinct cells: their records
    carry ``fidelity`` and an ``@functional``-suffixed cell id, so the
    ledger index and the regression sentinel never conflate a
    counters-only run with a timed one.
    """
    fidelity = getattr(result, "fidelity", "event")
    cell = f"{result.workload}/{result.scheme}"
    if fidelity != "event":
        cell += f"@{fidelity}"
    record: Dict[str, Any] = {
        "kind": "run",
        "label": label,
        "workload": result.workload,
        "scheme": result.scheme,
        "fidelity": fidelity,
        "cell": cell,
        "cached": bool(cached),
        "scale": scale,
        "seed": seed,
        "host_seconds": round(result.host_seconds, 4),
        "metrics": result.key_metrics(),
    }
    if log_path:
        record["log"] = str(log_path)
    if config is not None:
        from repro.analysis.result_cache import cache_key

        record["config_key"] = cache_key(result.workload, config,
                                         scale if scale is not None else 0.0,
                                         seed if seed is not None else 0,
                                         workload_params or {})
    if result.latency:
        record["latency"] = {
            k: result.latency[k]
            for k in ("data_cycles", "metadata_cycles", "queue_cycles",
                      "total_cycles", "requests")
            if k in result.latency
        }
    return record


def record_from_cell(cell_result: Dict[str, Any], *,
                     label: str = "campaign",
                     scale: Optional[float] = None,
                     seed: Optional[int] = None,
                     log_path: Optional[str] = None) -> Dict[str, Any]:
    """A ledger record from a campaign worker's JSON result object.

    Subprocess workers report a summary (cycles, traffic,
    host_seconds) rather than a full ``RunResult``; the parent builds
    the ledger record from it on receipt, so campaign cells leave the
    same cross-run trail as in-process ones.

    A cell rescued by the runner's graceful-degradation hook (rerun
    on the functional tier after the event tier kept dying) carries
    ``fidelity`` and ``degraded`` plus the ``@functional`` cell-id
    suffix — the same never-conflate rule as
    :func:`record_from_result`.
    """
    traffic = {k: int(v) for k, v in
               (cell_result.get("traffic") or {}).items()}
    metrics: Dict[str, Any] = {"cycles": int(cell_result.get("cycles", 0))}
    if traffic:
        metrics["total_dram_bytes"] = sum(traffic.values())
        metrics["demand_bytes"] = traffic.get("data", 0)
        metrics["overhead_bytes"] = (traffic.get("metadata", 0)
                                     + traffic.get("verify_fill", 0)
                                     + traffic.get("metadata_write", 0))
    workload = cell_result.get("workload", "?")
    scheme = cell_result.get("scheme", "?")
    fidelity = cell_result.get("fidelity", "event")
    cell = cell_result.get("cell", f"{workload}/{scheme}")
    if fidelity != "event" and not cell.endswith(f"@{fidelity}"):
        cell += f"@{fidelity}"
    record = {
        "kind": "run",
        "label": label,
        "workload": workload,
        "scheme": scheme,
        "fidelity": fidelity,
        "cell": cell,
        "cached": False,
        "scale": scale,
        "seed": seed,
        "host_seconds": cell_result.get("host_seconds", 0.0),
        "metrics": metrics,
    }
    if cell_result.get("degraded"):
        record["degraded"] = True
    if log_path:
        record["log"] = str(log_path)
    return record


def record_from_session(label: str, summary: Dict[str, Any], *,
                        log_path: Optional[str] = None,
                        progress_dir: Optional[str] = None
                        ) -> Dict[str, Any]:
    """A ``kind="session"`` record closing out one multi-cell run.

    ``summary`` is the final progress summary
    (:func:`repro.obs.progress.summary_dict`): cells
    done/failed/cached, cache hit ratio, aggregate events/sec and wall
    seconds.  One session record per ``compare``/``campaign``
    invocation lets ``obs history`` show fleet-level outcomes and link
    each run to its structured log and progress directory.
    """
    record: Dict[str, Any] = {
        "kind": "session",
        "label": label,
        "cell": f"session/{label}",
        "metrics": {k: v for k, v in summary.items()
                    if isinstance(v, (int, float))},
    }
    if log_path:
        record["log"] = str(log_path)
    if progress_dir:
        record["progress_dir"] = str(progress_dir)
    return record


def record_from_bench(payload: Dict[str, Any],
                      label: str = "bench_engine") -> Dict[str, Any]:
    """A ledger record from a ``bench_engine.py`` payload."""
    raw = payload.get("raw_engine", {})
    sim = payload.get("real_sim", {})
    metrics = {
        "raw_events_per_sec": raw.get("events_per_sec", 0),
        "sim_events_per_sec": sim.get("events_per_sec", 0),
    }
    functional = payload.get("functional_sim")
    if functional:
        metrics["functional_events_per_sec"] = \
            functional.get("events_per_sec", 0)
    columnar = payload.get("columnar_sim")
    if columnar:
        metrics["columnar_events_per_sec"] = \
            columnar.get("events_per_sec", 0)
    return {
        "kind": "bench",
        "label": label,
        "metrics": metrics,
        "bench": payload,
    }


# -- the ledger ---------------------------------------------------------------


class RunLedger:
    """Append-only JSONL run history with a derived index."""

    def __init__(self, path: Union[str, os.PathLike], fsync: bool = True):
        self.path = Path(path)
        self.fsync = fsync
        self._warned = False

    @classmethod
    def default(cls) -> Optional["RunLedger"]:
        """The environment-configured ledger, or None when disabled."""
        path = default_ledger_path()
        return cls(path) if path is not None else None

    @property
    def index_path(self) -> Path:
        return self.path.with_name(self.path.stem + ".idx.json")

    # -- writing -------------------------------------------------------------

    def append(self, record: Dict[str, Any]) -> str:
        """Append one record atomically; returns its ``run_id``.

        Provenance defaults (``ts``, ``git_sha``, ``model_version``,
        ``format``) are stamped here so every caller's records are
        comparable.  The write itself goes through the shared
        :func:`~repro.obs.structlog.append_jsonl` seam — one atomic
        ``O_APPEND`` line, checksummed, torn-tail healing — so the
        ledger, journal, log and progress stores share one durability
        (and one chaos-injection) path.
        """
        from repro.core.results import MODEL_VERSION

        rec = dict(record)
        rec.setdefault("format", LEDGER_FORMAT)
        rec.setdefault("ts", round(time.time(), 3))
        rec.setdefault("git_sha", git_sha())
        rec.setdefault("model_version", MODEL_VERSION)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        prev_size, _torn_tail = self._tail_state()
        rec.setdefault("run_id", hashlib.blake2s(
            f"{rec['ts']}|{prev_size}|{json.dumps(rec, sort_keys=True, default=str)}"
            .encode("utf-8"), digest_size=6).hexdigest())
        written = append_jsonl(self.path, rec, fsync=self.fsync)
        self._update_index(rec, prev_size, prev_size + written)
        return rec["run_id"]

    def safe_append(self, record: Dict[str, Any]) -> Optional[str]:
        """:meth:`append`, but a failing ledger never fails the run."""
        try:
            return self.append(record)
        except OSError as exc:
            if not self._warned:
                self._warned = True
                print(f"warning: ledger append to {self.path} failed: {exc}",
                      file=sys.stderr)
            return None

    def _tail_state(self) -> tuple:
        """(current size, True when the last byte is not a newline)."""
        try:
            size = self.path.stat().st_size
        except OSError:
            return 0, False
        if size == 0:
            return 0, False
        with self.path.open("rb") as fh:
            fh.seek(-1, os.SEEK_END)
            return size, fh.read(1) != b"\n"

    # -- reading -------------------------------------------------------------

    def records(self) -> List[Dict[str, Any]]:
        """All readable records, oldest first.

        Unparseable lines (the torn tail of a killed process) and
        checksum-failing lines (corrupted in place) are skipped via
        the shared :func:`~repro.obs.structlog.read_jsonl` reader,
        mirroring the campaign journal's tolerance.
        """
        return list(read_jsonl(self.path))

    def tail(self, n: int) -> List[Dict[str, Any]]:
        """The most recent ``n`` records, oldest first."""
        records = self.records()
        return records[-n:] if n > 0 else []

    def find(self, run_id_prefix: str) -> Optional[Dict[str, Any]]:
        """The unique record whose run_id starts with the prefix.

        Raises ValueError when the prefix is ambiguous; returns None
        when nothing matches.
        """
        matches = [r for r in self.records()
                   if str(r.get("run_id", "")).startswith(run_id_prefix)]
        if not matches:
            return None
        if len(matches) > 1:
            full = {str(r.get("run_id")) for r in matches}
            if len(full) > 1:
                raise ValueError(
                    f"run id prefix {run_id_prefix!r} is ambiguous: "
                    + ", ".join(sorted(full)))
        return matches[-1]

    # -- the derived index ----------------------------------------------------

    def index(self) -> Dict[str, Any]:
        """The derived index, rebuilt when stale or missing."""
        try:
            size = self.path.stat().st_size
        except OSError:
            size = 0
        try:
            with self.index_path.open() as fh:
                idx = json.load(fh)
            if isinstance(idx, dict) and idx.get("bytes") == size:
                return idx
        except (OSError, ValueError):
            pass
        return self.rebuild_index()

    def rebuild_index(self) -> Dict[str, Any]:
        """Regenerate the index by scanning the JSONL; atomic write."""
        idx = self._index_of(self.records())
        self._write_index(idx)
        return idx

    def _index_of(self, records: List[Dict[str, Any]]) -> Dict[str, Any]:
        try:
            size = self.path.stat().st_size
        except OSError:
            size = 0
        idx: Dict[str, Any] = {
            "format": LEDGER_FORMAT, "bytes": size,
            "count": len(records), "kinds": {}, "cells": {},
            "last_run_id": None, "last_ts": None,
        }
        for rec in records:
            self._index_add(idx, rec)
        return idx

    @staticmethod
    def _index_add(idx: Dict[str, Any], rec: Dict[str, Any]) -> None:
        kind = rec.get("kind", "?")
        idx["kinds"][kind] = idx["kinds"].get(kind, 0) + 1
        idx["last_run_id"] = rec.get("run_id")
        idx["last_ts"] = rec.get("ts")
        cell = rec.get("cell") or kind
        entry = idx["cells"].setdefault(
            cell, {"count": 0, "last_run_id": None, "last_ts": None})
        entry["count"] += 1
        entry["last_run_id"] = rec.get("run_id")
        entry["last_ts"] = rec.get("ts")
        cycles = (rec.get("metrics") or {}).get("cycles")
        if cycles is not None:
            entry["last_cycles"] = cycles

    def _update_index(self, rec: Dict[str, Any], prev_size: int,
                      new_size: int) -> None:
        """Incrementally fold one appended record into the index; any
        disagreement with the JSONL's pre-append size forces a full
        rebuild (e.g. another process appended in between)."""
        idx = None
        try:
            with self.index_path.open() as fh:
                idx = json.load(fh)
        except (OSError, ValueError):
            idx = None
        if (not isinstance(idx, dict) or "cells" not in idx
                or idx.get("bytes") != prev_size):
            self.rebuild_index()
            return
        idx["bytes"] = new_size
        idx["count"] = idx.get("count", 0) + 1
        self._index_add(idx, rec)
        self._write_index(idx)

    def _write_index(self, idx: Dict[str, Any]) -> None:
        import tempfile

        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=str(self.path.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(idx, fh, sort_keys=True)
            os.replace(tmp, self.index_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


def resolve_ledger(ledger: Union[None, bool, str, os.PathLike, RunLedger]
                   ) -> Optional[RunLedger]:
    """Normalize the ``ledger=`` argument accepted across the repo.

    ``None``/``True`` — the environment default (which may be off);
    ``False`` — disabled; a path — that file; a ledger — itself.
    """
    if ledger is False:
        return None
    if ledger is None or ledger is True:
        return RunLedger.default()
    if isinstance(ledger, RunLedger):
        return ledger
    return RunLedger(ledger)
