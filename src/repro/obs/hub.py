"""The per-run observability hub.

One :class:`Observability` object configures everything this package
offers and carries the live tracer/sampler/attributor for one
simulated system.  The default, :data:`OBS_OFF`, is inert: a null
tracer, no sampler, no latency attribution — safe to share between
systems and free to consult on hot paths.

Construction is two-phase because the hub outlives any single system
configuration: ``Observability(...)`` records *what* to observe;
:meth:`Observability.attach` (called by ``GpuSystem``) binds the
sampler, attributor and flame profiler to that system's simulator and
stats registry.  An enabled hub binds to **one** system: a second
:meth:`attach` without an intervening :meth:`detach` raises, because
silently rebinding would leave the first system's observers orphaned
and split one run's samples across two machines.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.flame import FlameProfiler
from repro.obs.latency import LatencyAttributor
from repro.obs.sampler import MetricsSampler
from repro.obs.tracer import NULL_TRACER, ChromeTracer, NullTracer
from repro.sim.engine import Simulator
from repro.sim.stats import StatGroup


class Observability:
    """Configuration + live objects for one run's observability."""

    def __init__(self, tracer: Optional[NullTracer] = None,
                 sample_interval: int = 0,
                 attribute_latency: bool = False,
                 flame: Optional[FlameProfiler] = None,
                 inspect=None):
        self.tracer: NullTracer = tracer if tracer is not None else NULL_TRACER
        self.sample_interval = sample_interval
        self.attribute_latency = attribute_latency
        #: Optional deterministic self-profiler
        #: (:class:`~repro.obs.flame.FlameProfiler`); attached to the
        #: scheduling surface alongside the timed observers.
        self.flame = flame
        #: Optional memory-hierarchy introspection collector
        #: (:class:`~repro.obs.inspect.MemoryInspector`).  Counter-based
        #: like the flame profiler, so allowed on the functional tier;
        #: the system attaches it to caches/channels post-construction.
        self.inspect = inspect
        self.sampler: Optional[MetricsSampler] = None
        self.latency: Optional[LatencyAttributor] = None
        self._attached_to: Optional[object] = None

    @property
    def timed_enabled(self) -> bool:
        """True when any *timed* observer is configured (tracing,
        sampling, latency attribution) — the ones that are meaningless
        on the clock-free functional tier.  The flame profiler counts
        events, not cycles, so it is deliberately excluded."""
        return (self.tracer.enabled or self.sample_interval > 0
                or self.attribute_latency)

    @property
    def enabled(self) -> bool:
        return (self.timed_enabled or self.flame is not None
                or self.inspect is not None)

    def attach(self, sim: Simulator, stats: StatGroup) -> None:
        """Bind live observers to a freshly built system.

        An enabled hub attaches exactly once; re-attaching raises
        until :meth:`detach` releases the previous system.  The shared
        disabled hub (:data:`OBS_OFF`) has nothing to bind, so every
        system may keep attaching it freely.
        """
        if not self.enabled:
            return
        if self._attached_to is not None:
            raise RuntimeError(
                "Observability hub is already attached to a system; "
                "each enabled hub observes one system — call detach() "
                "first, or build a fresh hub per run")
        self._attached_to = sim
        if self.sample_interval > 0:
            self.sampler = MetricsSampler(sim, stats, self.sample_interval)
        if self.attribute_latency:
            self.latency = LatencyAttributor(sim, stats.child("latency"))
        if self.flame is not None:
            self.flame.instrument(sim)

    def detach(self) -> None:
        """Release the attached system so the hub can be reused.

        Unhooks the flame profiler and drops the sampler/attributor
        bindings; collected data (trace events, flame samples, the
        last latency breakdown) survives for export.
        """
        if self.flame is not None:
            self.flame.release()
        self.sampler = None
        self.latency = None
        self._attached_to = None

    def start(self) -> None:
        """Arm run-time observers (called when the system starts)."""
        if self.sampler is not None:
            self.sampler.start()

    def finish(self) -> None:
        """Close trailing state at end of run."""
        if self.sampler is not None:
            self.sampler.finish()


def make_observability(trace_out: Optional[str] = None,
                       metrics_out: Optional[str] = None,
                       sample_interval: int = 1000,
                       trace_categories: Optional[str] = None,
                       attribute_latency: bool = False,
                       trace_capacity: int = 1_000_000,
                       flame_out: Optional[str] = None,
                       flame_sample_every: int = 64,
                       inspect_out: Optional[str] = None) -> Observability:
    """Build a hub from CLI-flavoured options.

    ``trace_categories`` is a comma-separated list (``"dram,l2"``) or
    ``None`` for all categories.  Sampling is enabled whenever
    ``metrics_out`` is given; the deterministic flame profiler whenever
    ``flame_out`` is; memory-hierarchy introspection whenever
    ``inspect_out`` is.
    """
    if metrics_out and sample_interval < 1:
        raise ValueError(
            f"metrics output requested but sample_interval is "
            f"{sample_interval}; it must be >= 1 cycle")
    tracer: Optional[ChromeTracer] = None
    if trace_out:
        cats = None
        if trace_categories:
            cats = [c.strip() for c in trace_categories.split(",") if c.strip()]
        tracer = ChromeTracer(capacity=trace_capacity, categories=cats)
    inspector = None
    if inspect_out:
        from repro.obs.inspect import MemoryInspector
        inspector = MemoryInspector()
    return Observability(
        tracer=tracer,
        sample_interval=sample_interval if metrics_out else 0,
        attribute_latency=attribute_latency,
        flame=(FlameProfiler(sample_every=flame_sample_every)
               if flame_out else None),
        inspect=inspector,
    )


#: The shared disabled hub; the implicit default everywhere.
OBS_OFF = Observability()
