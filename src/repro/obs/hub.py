"""The per-run observability hub.

One :class:`Observability` object configures everything this package
offers and carries the live tracer/sampler/attributor for one
simulated system.  The default, :data:`OBS_OFF`, is inert: a null
tracer, no sampler, no latency attribution — safe to share between
systems and free to consult on hot paths.

Construction is two-phase because the hub outlives any single system
configuration: ``Observability(...)`` records *what* to observe;
:meth:`Observability.attach` (called by ``GpuSystem``) binds the
sampler and attributor to that system's simulator and stats registry.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.latency import LatencyAttributor
from repro.obs.sampler import MetricsSampler
from repro.obs.tracer import NULL_TRACER, ChromeTracer, NullTracer
from repro.sim.engine import Simulator
from repro.sim.stats import StatGroup


class Observability:
    """Configuration + live objects for one run's observability."""

    def __init__(self, tracer: Optional[NullTracer] = None,
                 sample_interval: int = 0,
                 attribute_latency: bool = False):
        self.tracer: NullTracer = tracer if tracer is not None else NULL_TRACER
        self.sample_interval = sample_interval
        self.attribute_latency = attribute_latency
        self.sampler: Optional[MetricsSampler] = None
        self.latency: Optional[LatencyAttributor] = None

    @property
    def enabled(self) -> bool:
        return (self.tracer.enabled or self.sample_interval > 0
                or self.attribute_latency)

    def attach(self, sim: Simulator, stats: StatGroup) -> None:
        """Bind live observers to a freshly built system (idempotent
        per system; a hub must not be attached to two systems at once).
        """
        if self.sample_interval > 0:
            self.sampler = MetricsSampler(sim, stats, self.sample_interval)
        if self.attribute_latency:
            self.latency = LatencyAttributor(sim, stats.child("latency"))

    def start(self) -> None:
        """Arm run-time observers (called when the system starts)."""
        if self.sampler is not None:
            self.sampler.start()

    def finish(self) -> None:
        """Close trailing state at end of run."""
        if self.sampler is not None:
            self.sampler.finish()


def make_observability(trace_out: Optional[str] = None,
                       metrics_out: Optional[str] = None,
                       sample_interval: int = 1000,
                       trace_categories: Optional[str] = None,
                       attribute_latency: bool = False,
                       trace_capacity: int = 1_000_000) -> Observability:
    """Build a hub from CLI-flavoured options.

    ``trace_categories`` is a comma-separated list (``"dram,l2"``) or
    ``None`` for all categories.  Sampling is enabled whenever
    ``metrics_out`` is given.
    """
    if metrics_out and sample_interval < 1:
        raise ValueError(
            f"metrics output requested but sample_interval is "
            f"{sample_interval}; it must be >= 1 cycle")
    tracer: Optional[ChromeTracer] = None
    if trace_out:
        cats = None
        if trace_categories:
            cats = [c.strip() for c in trace_categories.split(",") if c.strip()]
        tracer = ChromeTracer(capacity=trace_capacity, categories=cats)
    return Observability(
        tracer=tracer,
        sample_interval=sample_interval if metrics_out else 0,
        attribute_latency=attribute_latency,
    )


#: The shared disabled hub; the implicit default everywhere.
OBS_OFF = Observability()
