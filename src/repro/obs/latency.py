"""Per-request latency attribution.

Every L2-bound load transaction (an L1 miss) can carry a
:class:`LoadToken` that is stamped as it crosses pipeline boundaries:

* ``t_issue``   — the SM puts the coalesced transaction on the crossbar;
* ``t_arrive``  — the L2 slice receives it;
* ``t_fetch``   — the slice hands the miss to the protection scheme
  (only for the transaction that *triggers* the fetch; merged requests
  wait on someone else's fetch);
* ``t_data``    — the last DATA / VERIFY_FILL DRAM read issued on this
  token's behalf returned;
* ``t_meta``    — the last METADATA DRAM read returned;
* ``t_respond`` — the slice's response callback fired;
* ``t_complete``— the response crossed the crossbar back into the SM.

:meth:`LatencyAttributor.complete` folds the stamps into three
components that **sum to the total latency exactly**:

``data``
    DRAM time spent fetching data for this request
    (``t_data - t_fetch``), overfetch/verify fills included.
``metadata``
    The *extra* stall protection metadata added beyond the data fetch:
    ``max(0, t_meta - max(t_data, t_fetch))``.  Metadata that arrives
    under the shadow of the data fetch costs nothing and is correctly
    attributed as zero.
``queue``
    Everything else: crossbar transit both ways, L2 service/check
    latency, MSHR merge waits, craft-buffer scheduling.  Computed as
    the remainder, which is what makes the decomposition exact.

DRAM reads are linked to a token through a *current-token* scope: the
L2 slice brackets its synchronous ``protection.fetch(...)`` call with
:meth:`begin_fetch` / :meth:`end_fetch`, and the protection context
wraps any DRAM read callback it enqueues inside that scope.  Reads a
scheme defers to a later event (craft-buffer overflow retries, merged
metadata fetches) fall outside the scope and land in ``queue``.

When attribution is disabled the system-wide attributor reference is
``None`` and every call site guards with one ``is not None`` check —
no tokens, no stamps, no overhead.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.sim.engine import Simulator
from repro.sim.stats import StatGroup

#: Histogram edges (cycles) shared by the attribution histograms.
LATENCY_EDGES = [50, 100, 200, 400, 800, 1600, 3200]


class LoadToken:
    """Boundary timestamps for one L2-bound load transaction."""

    __slots__ = ("t_issue", "t_arrive", "t_fetch", "t_data", "t_meta",
                 "t_respond", "hit")

    def __init__(self, t_issue: int):
        self.t_issue = t_issue
        self.t_arrive: Optional[int] = None
        self.t_fetch: Optional[int] = None
        self.t_data: Optional[int] = None
        self.t_meta: Optional[int] = None
        self.t_respond: Optional[int] = None
        self.hit = False


class LatencyAttributor:
    """Creates, links and retires :class:`LoadToken` objects.

    Owns a ``latency`` stat group: histograms for the total and each
    component, plus exact cycle-sum counters the profile report uses
    (the counters, unlike bucketed histograms, preserve the sum
    identity ``data + metadata + queue == total`` to the cycle).
    """

    def __init__(self, sim: Simulator, stats: StatGroup):
        self.sim = sim
        self.stats = stats
        self.current: Optional[LoadToken] = None
        self._h_total = stats.histogram("total", LATENCY_EDGES)
        self._h_data = stats.histogram("data_stall", LATENCY_EDGES)
        self._h_meta = stats.histogram("metadata_stall", LATENCY_EDGES)
        self._h_queue = stats.histogram("queue_stall", LATENCY_EDGES)
        self._requests = stats.counter("requests")
        self._l2_hits = stats.counter("l2_hit_requests")
        self._total_cycles = stats.counter("total_cycles")
        self._data_cycles = stats.counter("data_cycles")
        self._meta_cycles = stats.counter("metadata_cycles")
        self._queue_cycles = stats.counter("queue_cycles")

    # -- token lifecycle ------------------------------------------------------

    def issue(self) -> LoadToken:
        """New token stamped at the current cycle (SM -> crossbar)."""
        return LoadToken(self.sim.now)

    def arrive(self, token: LoadToken) -> None:
        token.t_arrive = self.sim.now

    def respond(self, token: LoadToken) -> None:
        token.t_respond = self.sim.now

    # -- fetch scope ----------------------------------------------------------

    def begin_fetch(self, token: LoadToken) -> None:
        """Open the current-token scope around ``protection.fetch``."""
        token.t_fetch = self.sim.now
        self.current = token

    def end_fetch(self) -> None:
        self.current = None

    def link_read(self, is_metadata: bool,
                  callback: Callable[[], None]) -> Callable[[], None]:
        """Wrap a DRAM read callback to stamp the in-scope token."""
        token = self.current
        assert token is not None

        def stamped() -> None:
            now = self.sim.now
            if is_metadata:
                if token.t_meta is None or now > token.t_meta:
                    token.t_meta = now
            else:
                if token.t_data is None or now > token.t_data:
                    token.t_data = now
            callback()

        return stamped

    # -- retirement -----------------------------------------------------------

    def complete(self, token: LoadToken) -> None:
        """Final stamp (response delivered to the SM); record components."""
        now = self.sim.now
        total = now - token.t_issue
        data = meta = 0
        if token.t_fetch is not None:
            if token.t_data is not None:
                data = max(0, token.t_data - token.t_fetch)
            shadow = token.t_fetch if token.t_data is None else token.t_data
            if token.t_meta is not None:
                meta = max(0, token.t_meta - shadow)
        queue = total - data - meta
        self._requests.add(1)
        if token.hit:
            self._l2_hits.add(1)
        self._total_cycles.add(total)
        self._data_cycles.add(data)
        self._meta_cycles.add(meta)
        self._queue_cycles.add(queue)
        self._h_total.record(total)
        self._h_data.record(data)
        self._h_meta.record(meta)
        self._h_queue.record(queue)

    # -- summaries ------------------------------------------------------------

    def breakdown(self) -> Dict[str, float]:
        """Aggregate attribution; components sum to ``total_cycles``."""
        n = self._requests.value
        return {
            "requests": n,
            "l2_hit_requests": self._l2_hits.value,
            "total_cycles": self._total_cycles.value,
            "data_cycles": self._data_cycles.value,
            "metadata_cycles": self._meta_cycles.value,
            "queue_cycles": self._queue_cycles.value,
            "total_mean": self._h_total.mean,
            "total_p50": self._h_total.percentile(0.50),
            "total_p95": self._h_total.percentile(0.95),
            "data_mean": self._h_data.mean,
            "metadata_mean": self._h_meta.mean,
            "queue_mean": self._h_queue.mean,
        }
