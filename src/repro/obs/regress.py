"""Regression sentinel over the run ledger.

Compares the latest ledger records (:mod:`repro.obs.ledger`) against a
committed baseline (``benchmarks/results/BASELINE.json``) with
per-metric tolerance bands and a direction per metric:

* **perf metrics** (``cycles``, ``*_events_per_sec``, hit rates) get a
  *relative* band — a model refactor may legitimately move them a
  little, and host-throughput figures are noisy across machines — but
  a move past the band *in the bad direction* is a breach (a move past
  it in the good direction is reported as ``improved``, never fails);
* **conserved-traffic invariants** (``total_dram_bytes``,
  ``demand_bytes``, ``overhead_bytes``) are *exact* — the simulation
  is deterministic, so any drift at all means behavior changed;
* a **model-version mismatch** between baseline and records is itself
  a breach: the stored numbers describe a different model, so the
  baseline must be re-seeded (``repro obs baseline``) rather than
  silently compared.

The report renders as a readable delta table; :func:`check` returns a
:class:`RegressionReport` whose :attr:`~RegressionReport.ok` drives
the CLI's exit status.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

#: Baseline file format version.
BASELINE_FORMAT = 1

#: metric -> (direction, default relative tolerance).
#: direction: "lower" = lower is better (regression when it rises),
#: "higher" = higher is better, "exact" = any difference is a breach.
DEFAULT_TOLERANCES: Dict[str, Tuple[str, float]] = {
    "cycles": ("lower", 0.05),
    "total_dram_bytes": ("exact", 0.0),
    "demand_bytes": ("exact", 0.0),
    "overhead_bytes": ("exact", 0.0),
    "l1_hit_rate": ("higher", 0.05),
    "l2_hit_rate": ("higher", 0.05),
    # Memory-hierarchy introspection metrics (docs/OBSERVABILITY.md
    # "Memory-hierarchy introspection").  Row locality and efficacy are
    # deterministic model outputs; small bands absorb legitimate
    # scheduling refactors without letting real locality loss through.
    "row_hit_rate": ("higher", 0.05),
    "reconstruction_efficacy": ("higher", 0.05),
    "mdc_colocation_frac": ("higher", 0.10),
    # Trace-level predictions are pure functions of the workload trace;
    # a shift means trace generation itself changed.
    "line_reuse_p50": ("lower", 0.10),
    "mdcache_reuse_p50": ("lower", 0.10),
    "meta_colocation": ("higher", 0.05),
    "predicted_efficacy": ("higher", 0.05),
    # Host-throughput figures swing wildly across runners; the default
    # band only catches collapse, not jitter.
    "raw_events_per_sec": ("higher", 0.75),
    "sim_events_per_sec": ("higher", 0.75),
    "functional_events_per_sec": ("higher", 0.75),
    "columnar_events_per_sec": ("higher", 0.75),
}

#: Metrics excluded from seeded baselines because they measure the
#: host, not the model (bench records carry the host figures instead).
_HOST_ONLY_METRICS = ("events", "events_per_sec", "host_seconds")


def metric_spec(name: str,
                tolerances: Optional[Dict[str, float]] = None
                ) -> Tuple[str, float]:
    """(direction, relative tolerance) for a metric, with overrides."""
    direction, tol = DEFAULT_TOLERANCES.get(name, ("lower", 0.05))
    if tolerances and name in tolerances:
        tol = float(tolerances[name])
    return direction, tol


@dataclass
class Delta:
    """One metric comparison in the delta table."""

    scope: str            # "workload/scheme" cell id, or "bench"
    metric: str
    baseline: Optional[float]
    current: Optional[float]
    status: str           # ok | improved | regressed | missing | stale

    @property
    def change(self) -> Optional[float]:
        """Relative change vs baseline (None when undefined)."""
        if self.baseline in (None, 0) or self.current is None:
            return None
        return self.current / self.baseline - 1.0

    @property
    def breach(self) -> bool:
        return self.status in ("regressed", "missing", "stale")


@dataclass
class RegressionReport:
    """Outcome of one :func:`check` invocation."""

    rows: List[Delta] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def breaches(self) -> List[Delta]:
        return [row for row in self.rows if row.breach]

    @property
    def ok(self) -> bool:
        return not self.breaches

    def render(self) -> str:
        """The human-readable delta table plus verdict line."""
        from repro.analysis.tables import format_table

        def fmt(value: Optional[float]) -> object:
            if value is None:
                return None
            if float(value).is_integer():
                return f"{int(value):,}"
            return round(float(value), 4)

        table = []
        for row in self.rows:
            change = row.change
            table.append([
                row.scope, row.metric, fmt(row.baseline), fmt(row.current),
                f"{change:+.2%}" if change is not None else "-",
                row.status.upper() if row.breach else row.status,
            ])
        parts = [format_table(
            ["scope", "metric", "baseline", "current", "delta", "status"],
            table, title="regression check")]
        parts.extend(f"note: {note}" for note in self.notes)
        breaches = self.breaches
        parts.append("REGRESSION: "
                     f"{len(breaches)} breached metric(s)" if breaches
                     else "ok: all metrics within tolerance")
        return "\n".join(parts)


# -- baseline files -----------------------------------------------------------


def default_baseline_path() -> Path:
    """The committed baseline next to the benchmark results."""
    return (Path(__file__).resolve().parents[3]
            / "benchmarks" / "results" / "BASELINE.json")


def load_baseline(path: Union[str, os.PathLike]) -> Dict[str, Any]:
    """Load and structurally validate a baseline JSON file."""
    with Path(path).open() as fh:
        baseline = json.load(fh)
    if not isinstance(baseline, dict) or "cells" not in baseline:
        raise ValueError(f"{path} is not a baseline file (no 'cells')")
    return baseline


def save_baseline(baseline: Dict[str, Any],
                  path: Union[str, os.PathLike]) -> None:
    """Write a baseline as stable, reviewable (sorted, indented) JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        json.dump(baseline, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _latest_cells(records: Sequence[Dict[str, Any]]
                  ) -> Dict[str, Dict[str, Any]]:
    """cell id -> most recent run record (file order = time order)."""
    latest: Dict[str, Dict[str, Any]] = {}
    for rec in records:
        if rec.get("kind") == "run" and rec.get("cell"):
            latest[rec["cell"]] = rec
    return latest


def _latest_bench(records: Sequence[Dict[str, Any]]
                  ) -> Optional[Dict[str, Any]]:
    bench = None
    for rec in records:
        if rec.get("kind") == "bench":
            bench = rec
    return bench


def make_baseline(records: Sequence[Dict[str, Any]],
                  tolerances: Optional[Dict[str, float]] = None
                  ) -> Dict[str, Any]:
    """Seed a baseline from the latest ledger record per cell.

    Per-cell metrics keep only the model-determined figures
    (host-noise metrics are excluded); the latest bench record seeds
    the host-throughput section with its own generous bands.
    """
    from repro.core.results import MODEL_VERSION
    from repro.obs.ledger import git_sha

    cells: Dict[str, Any] = {}
    for cell, rec in sorted(_latest_cells(records).items()):
        metrics = {k: v for k, v in (rec.get("metrics") or {}).items()
                   if k not in _HOST_ONLY_METRICS}
        if not metrics:
            continue
        cells[cell] = {
            "workload": rec.get("workload"),
            "scheme": rec.get("scheme"),
            "fidelity": rec.get("fidelity", "event"),
            "scale": rec.get("scale"),
            "seed": rec.get("seed"),
            "metrics": metrics,
        }
    baseline: Dict[str, Any] = {
        "format": BASELINE_FORMAT,
        "model_version": MODEL_VERSION,
        "git_sha": git_sha(),
        "cells": cells,
    }
    bench = _latest_bench(records)
    if bench is not None:
        baseline["bench"] = {
            k: v for k, v in (bench.get("metrics") or {}).items()
            if k in DEFAULT_TOLERANCES
        }
    if tolerances:
        baseline["tolerances"] = dict(tolerances)
    return baseline


# -- the check ----------------------------------------------------------------


def _match(cell_spec: Dict[str, Any], rec: Dict[str, Any]) -> bool:
    """Does a ledger record describe the same cell as a baseline entry?"""
    for key in ("workload", "scheme", "scale", "seed"):
        want = cell_spec.get(key)
        if want is not None and rec.get(key) != want:
            return False
    # Fidelity tiers are distinct cells; baselines predating the knob
    # (and records written before it) both mean event mode.
    return (rec.get("fidelity", "event")
            == cell_spec.get("fidelity", "event"))


def _compare(scope: str, metric: str, base: float, current: Optional[float],
             tolerances: Optional[Dict[str, float]]) -> Delta:
    if current is None:
        return Delta(scope, metric, base, None, "missing")
    direction, tol = metric_spec(metric, tolerances)
    base_f, cur_f = float(base), float(current)
    if direction == "exact":
        status = "ok" if cur_f == base_f else "regressed"
        return Delta(scope, metric, base_f, cur_f, status)
    lo, hi = base_f * (1.0 - tol), base_f * (1.0 + tol)
    if direction == "lower":          # lower is better
        status = ("regressed" if cur_f > hi
                  else "improved" if cur_f < lo else "ok")
    else:                             # higher is better
        status = ("regressed" if cur_f < lo
                  else "improved" if cur_f > hi else "ok")
    return Delta(scope, metric, base_f, cur_f, status)


def check(records: Sequence[Dict[str, Any]], baseline: Dict[str, Any],
          tolerances: Optional[Dict[str, float]] = None,
          ignore_model_version: bool = False,
          log=None) -> RegressionReport:
    """Compare the latest ledger records against a baseline.

    ``tolerances`` (``{metric: rel_tol}``) overrides both the
    defaults and the bands stored in the baseline file.  A baseline
    cell with no matching ledger record breaches as ``missing``.
    ``log`` (a :mod:`repro.obs.structlog` logger) narrates the check:
    one ``regress.breach`` event per breached metric plus a final
    ``regress.done`` verdict.
    """
    from repro.obs.structlog import NULL_LOG

    log = log if log is not None else NULL_LOG
    report = _check(records, baseline, tolerances, ignore_model_version)
    for row in report.breaches:
        log.warn("regress.breach", scope=row.scope, metric=row.metric,
                 baseline=row.baseline, current=row.current,
                 status=row.status)
    log.info("regress.done", ok=report.ok, rows=len(report.rows),
             breaches=len(report.breaches))
    return report


def _check(records: Sequence[Dict[str, Any]], baseline: Dict[str, Any],
           tolerances: Optional[Dict[str, float]],
           ignore_model_version: bool) -> RegressionReport:
    report = RegressionReport()
    merged: Dict[str, float] = dict(baseline.get("tolerances") or {})
    if tolerances:
        merged.update(tolerances)

    from repro.core.results import MODEL_VERSION

    base_model = baseline.get("model_version")
    if base_model is not None and base_model != MODEL_VERSION:
        if ignore_model_version:
            report.notes.append(
                f"baseline model v{base_model} != current v{MODEL_VERSION} "
                "(ignored)")
        else:
            report.rows.append(
                Delta("baseline", "model_version", None, None, "stale"))
            report.notes.append(
                f"baseline was seeded for model v{base_model} but the "
                f"current model is v{MODEL_VERSION}; re-seed with "
                "`repro obs baseline`")
            return report

    # Per-cell model metrics: match the newest record for each cell.
    run_records = [r for r in records if r.get("kind") == "run"]
    for cell, spec in sorted((baseline.get("cells") or {}).items()):
        rec = None
        for candidate in run_records:
            if _match(spec, candidate):
                rec = candidate
        metrics = rec.get("metrics", {}) if rec is not None else {}
        for metric, base_value in sorted(spec.get("metrics", {}).items()):
            report.rows.append(_compare(cell, metric, base_value,
                                        metrics.get(metric), merged))
        if rec is None:
            report.notes.append(
                f"no ledger record matches baseline cell {cell} "
                f"(scale={spec.get('scale')}, seed={spec.get('seed')})")

    # Host-throughput bench metrics: newest bench record wins.
    bench_spec = baseline.get("bench") or {}
    if bench_spec:
        bench = _latest_bench(records)
        bench_metrics = bench.get("metrics", {}) if bench else {}
        for metric, base_value in sorted(bench_spec.items()):
            report.rows.append(_compare("bench", metric, base_value,
                                        bench_metrics.get(metric), merged))
        if bench is None:
            report.notes.append("no bench record in the ledger "
                                "(run benchmarks/bench_engine.py)")
    return report


def diff_records(rec_a: Dict[str, Any], rec_b: Dict[str, Any]
                 ) -> List[List[object]]:
    """Metric-by-metric rows comparing two ledger records (for
    ``repro obs diff``): [metric, a, b, delta]."""
    metrics_a = rec_a.get("metrics") or {}
    metrics_b = rec_b.get("metrics") or {}
    rows: List[List[object]] = []
    for metric in sorted(set(metrics_a) | set(metrics_b)):
        a, b = metrics_a.get(metric), metrics_b.get(metric)
        if isinstance(a, (int, float)) and isinstance(b, (int, float)) and a:
            delta = f"{b / a - 1.0:+.2%}"
        else:
            delta = "-"
        rows.append([metric, a, b, delta])
    return rows
