"""Deterministic self-profiler: flamegraphs of the simulator itself.

Wall-time profilers answer "where did the host seconds go" but their
output changes run to run — useless for diffing two engine versions or
pinning a perf regression in CI.  This profiler samples on **executed
event count** instead of wall time: every ``sample_every``-th frame the
engine executes, the current *component stack* is credited with one
sample.  Same workload + same seed ⇒ same event sequence ⇒ the
collapsed-stack output is **bit-identical across runs**.

A *frame* is one scheduled callable, named after the component that
owns it (``sm0`` → ``coalescer`` → ``l2_slice3`` → ``mdcache`` /
``dram0``).  Stacks are *scheduling ancestry*: when an event running
under stack ``S`` schedules another event, the child runs under
``S + (child frame,)``.  That is exactly the causality chain a memory
access follows through the machine, so the flamegraph reads as the
hardware pipeline.

The profiler wraps the scheduling surface 1:1 — each scheduled ``fn``
becomes one wrapper frame, one queue entry, executed once — so
``events_executed`` and **every simulation counter are unchanged**;
only host-side sample counts are collected.  Both fidelity tiers are
supported: :meth:`FlameProfiler.instrument` hooks
:class:`~repro.sim.engine.Simulator` and the functional tier's
``ImmediateQueue`` alike (duck-typed ``schedule``/``schedule_at``/
``schedule_daemon``), and :meth:`FlameProfiler.wrap_root` roots the
functional tier's tight loop at ``smN.step``.

Output is the classic *collapsed stack* format (``frame;frame;frame
count``, one line per stack, sorted) consumed directly by
``flamegraph.pl`` and speedscope.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

#: Stacks deeper than this stop growing (retry/recursion chains would
#: otherwise mint unbounded distinct stacks).
MAX_DEPTH = 24

#: Default sampling period in executed frames.  Small enough that a
#: tiny smoke cell still collects hundreds of samples; sampling cost is
#: one modulo per frame either way.
DEFAULT_SAMPLE_EVERY = 64

_WRAPPED_METHODS = ("schedule", "schedule_at", "schedule_daemon")


def frame_name(fn: Callable[..., Any]) -> str:
    """A stable human-readable name for one scheduled callable.

    Bound methods are named ``<component>.<method>`` where the
    component identity comes from the owner's ``name`` / ``sm_id`` /
    ``slice_id`` attribute (falling back to the class name); free
    functions use their qualname with closure noise stripped.
    """
    owner = getattr(fn, "__self__", None)
    method = getattr(fn, "__name__", None) or "<callable>"
    if owner is not None:
        name = getattr(owner, "name", None)
        if isinstance(name, str) and name:
            comp = name
        elif hasattr(owner, "sm_id"):
            comp = f"sm{owner.sm_id}"
        elif hasattr(owner, "slice_id"):
            comp = f"l2_slice{owner.slice_id}"
        else:
            comp = type(owner).__name__
        return f"{comp}.{method.lstrip('_')}"
    qual = getattr(fn, "__qualname__", method)
    return qual.replace("<locals>.", "")


class FlameProfiler:
    """Collects deterministic collapsed-stack samples from one system.

    Lifecycle: construct → :meth:`instrument` the system's scheduler
    (done by ``Observability.attach``) → run → :meth:`collapsed` /
    :meth:`export` → :meth:`release`.
    """

    def __init__(self, sample_every: int = DEFAULT_SAMPLE_EVERY):
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        self.sample_every = int(sample_every)
        #: stack tuple -> sample count.
        self.samples: Dict[Tuple[str, ...], int] = {}
        #: Frames executed under the profiler (sampled or not).
        self.frames_executed = 0
        self._stack: Tuple[str, ...] = ()
        self._sim: Optional[Any] = None
        self._saved: Dict[str, Optional[Callable[..., Any]]] = {}

    # -- instrumentation -----------------------------------------------------

    def instrument(self, sim: Any) -> None:
        """Hook the scheduling surface of ``sim`` (an engine
        ``Simulator`` or a functional-tier ``ImmediateQueue``).

        Each original ``schedule*(delay, fn, *args)`` is shadowed by a
        version that enqueues a frame wrapper around ``fn`` — still
        exactly one queue entry per call.
        """
        if self._sim is not None:
            raise RuntimeError(
                "FlameProfiler is already instrumenting a simulator; "
                "release() it before instrumenting another")
        self._sim = sim
        for method in _WRAPPED_METHODS:
            orig = getattr(sim, method, None)
            if orig is None:
                continue
            self._saved[method] = sim.__dict__.get(method)
            setattr(sim, method, self._make_schedule(orig))

    def _make_schedule(self, orig: Callable[..., Any]) -> Callable[..., Any]:
        def schedule(delay: int, fn: Callable[..., None],
                     *args: Any) -> None:
            stack = self._push(self._stack, frame_name(fn))
            orig(delay, self._run_frame, stack, fn, args)
        return schedule

    def release(self) -> None:
        """Unhook the scheduler (already-queued wrappers still drain
        correctly; they only stop extending stacks)."""
        sim = self._sim
        if sim is None:
            return
        for method, saved in self._saved.items():
            if saved is None:
                sim.__dict__.pop(method, None)
            else:
                setattr(sim, method, saved)
        self._saved.clear()
        self._sim = None

    # -- frame execution -----------------------------------------------------

    def _push(self, stack: Tuple[str, ...], frame: str) -> Tuple[str, ...]:
        if stack and stack[-1] == frame:
            return stack  # collapse self-reschedule chains
        if len(stack) >= MAX_DEPTH:
            return stack
        return stack + (frame,)

    def _run_frame(self, stack: Tuple[str, ...], fn: Callable[..., None],
                   args: Tuple[Any, ...]) -> None:
        self.frames_executed += 1
        if self.frames_executed % self.sample_every == 0:
            self.samples[stack] = self.samples.get(stack, 0) + 1
        prev = self._stack
        self._stack = stack
        try:
            fn(*args)
        finally:
            self._stack = prev

    def wrap_root(self, name: str, fn: Callable[..., Any]
                  ) -> Callable[..., Any]:
        """Run ``fn`` under an explicit root frame.

        The functional tier drives SMs from a host-side loop rather
        than scheduled events, so its root (``smN.step``) must be
        planted by the caller; micro-tasks the step drains then inherit
        it through the instrumented queue.
        """
        def runner(*args: Any, **kwargs: Any) -> Any:
            stack = self._push(self._stack, name)
            self.frames_executed += 1
            if self.frames_executed % self.sample_every == 0:
                self.samples[stack] = self.samples.get(stack, 0) + 1
            prev = self._stack
            self._stack = stack
            try:
                return fn(*args, **kwargs)
            finally:
                self._stack = prev
        return runner

    # -- output --------------------------------------------------------------

    @property
    def sample_count(self) -> int:
        return sum(self.samples.values())

    def collapsed(self) -> str:
        """Collapsed-stack text: ``frame;frame count`` lines, sorted.

        Sorting makes the output canonical — bit-identical for
        identical sample sets regardless of dict insertion order.
        """
        lines: List[str] = []
        for stack, count in self.samples.items():
            frames = ";".join(stack) if stack else "(root)"
            lines.append(f"{frames} {count}")
        lines.sort()
        return "\n".join(lines) + ("\n" if lines else "")

    def export(self, path: Union[str, os.PathLike]) -> Path:
        """Write :meth:`collapsed` to ``path`` (atomic replace)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(self.collapsed(), encoding="utf-8")
        os.replace(tmp, path)
        return path

    def top_stacks(self, n: int = 10) -> List[Tuple[str, int]]:
        """The ``n`` hottest stacks as ``("a;b;c", count)`` pairs."""
        ranked = sorted(self.samples.items(),
                        key=lambda kv: (-kv[1], kv[0]))
        return [(";".join(stack) if stack else "(root)", count)
                for stack, count in ranked[:n]]
