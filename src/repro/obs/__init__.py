"""Simulation observability: tracing, time-series metrics, latency
attribution.

Three orthogonal tools, all off by default and all near-free when off:

* :class:`~repro.obs.tracer.ChromeTracer` — structured spans/instants
  in Chrome trace format (``chrome://tracing`` / Perfetto);
* :class:`~repro.obs.sampler.MetricsSampler` — windowed snapshots of
  every counter/gauge/histogram in the stats registry, exportable as
  JSON-lines or CSV;
* :class:`~repro.obs.latency.LatencyAttributor` — per-request latency
  decomposition into data / protection-metadata / queue cycles.

The :class:`~repro.obs.hub.Observability` hub bundles them for one
run; ``GpuSystem(config, obs=...)`` threads it through the machine.

*Across* runs, the :class:`~repro.obs.ledger.RunLedger` records every
harness/campaign/bench invocation, :mod:`repro.obs.regress` gates on a
committed baseline, and :mod:`repro.obs.htmlreport` renders the
history as a self-contained HTML report (``repro obs ...`` CLI).
See ``docs/OBSERVABILITY.md``.
"""

from repro.obs.hub import OBS_OFF, Observability, make_observability
from repro.obs.latency import LatencyAttributor, LoadToken
from repro.obs.ledger import (RunLedger, default_ledger_path,
                              record_from_bench, record_from_cell,
                              record_from_result, resolve_ledger)
from repro.obs.regress import (RegressionReport, check, load_baseline,
                               make_baseline, save_baseline)
from repro.obs.htmlreport import render_html, write_html
from repro.obs.sampler import MetricsSampler
from repro.obs.tracer import NULL_TRACER, ChromeTracer, NullTracer

__all__ = [
    "OBS_OFF",
    "Observability",
    "make_observability",
    "LatencyAttributor",
    "LoadToken",
    "MetricsSampler",
    "NULL_TRACER",
    "ChromeTracer",
    "NullTracer",
    "RunLedger",
    "default_ledger_path",
    "resolve_ledger",
    "record_from_result",
    "record_from_cell",
    "record_from_bench",
    "RegressionReport",
    "check",
    "make_baseline",
    "load_baseline",
    "save_baseline",
    "render_html",
    "write_html",
]
