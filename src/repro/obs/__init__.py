"""Simulation observability: tracing, time-series metrics, latency
attribution.

Three orthogonal tools, all off by default and all near-free when off:

* :class:`~repro.obs.tracer.ChromeTracer` — structured spans/instants
  in Chrome trace format (``chrome://tracing`` / Perfetto);
* :class:`~repro.obs.sampler.MetricsSampler` — windowed snapshots of
  every counter/gauge/histogram in the stats registry, exportable as
  JSON-lines or CSV;
* :class:`~repro.obs.latency.LatencyAttributor` — per-request latency
  decomposition into data / protection-metadata / queue cycles.

The :class:`~repro.obs.hub.Observability` hub bundles them for one
run; ``GpuSystem(config, obs=...)`` threads it through the machine.
See ``docs/OBSERVABILITY.md``.
"""

from repro.obs.hub import OBS_OFF, Observability, make_observability
from repro.obs.latency import LatencyAttributor, LoadToken
from repro.obs.sampler import MetricsSampler
from repro.obs.tracer import NULL_TRACER, ChromeTracer, NullTracer

__all__ = [
    "OBS_OFF",
    "Observability",
    "make_observability",
    "LatencyAttributor",
    "LoadToken",
    "MetricsSampler",
    "NULL_TRACER",
    "ChromeTracer",
    "NullTracer",
]
