"""Structured logging: the logs pillar of the observability stack.

The tracer answers *where cycles went inside one simulation*; the
ledger answers *what every run produced*.  This module answers the
operational question in between: **what is the execution stack doing
right now, and what did it do on the way** — cells starting and
finishing, cache hits and misses, workers spawning, retrying and
tripping watchdogs.

A :class:`StructLog` is a leveled JSONL event log with the same
durability contract as the run ledger
(:mod:`repro.obs.ledger`):

* **Appends are atomic** — one ``O_APPEND`` ``write()`` of one
  complete line, so concurrent appenders (pool workers, campaign
  subprocesses, the parent) interleave whole records, never
  half-records;
* **A torn tail is tolerated** — a record cut short by a kill is
  skipped on read and healed on the next append (a fresh line instead
  of gluing onto the fragment);
* **every record carries correlation IDs** — ``pid`` always; bound
  context (``cell``, ``fidelity``, ``run_id``, ``git_sha``, worker
  role) via :meth:`StructLog.bind`, so one grep reconstructs any
  cell's life across processes.

Configuration mirrors the ledger: the ``REPRO_LOG`` environment
variable names the log file (absent = logging off), ``REPRO_LOG_LEVEL``
sets the threshold (default ``debug``), and every CLI entry point also
takes ``--log-out FILE`` / ``--log-level``.  The disabled path is the
shared :data:`NULL_LOG` singleton — one truthiness test per call site.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import time
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

#: On-disk record format; bump on incompatible schema changes.
LOG_FORMAT = 1

#: Reserved per-record checksum field (see :func:`record_checksum`).
CHECKSUM_FIELD = "_ck"


def record_checksum(record: Dict[str, Any]) -> str:
    """Checksum of one JSONL record: blake2b over its canonical JSON
    form (sorted keys, :data:`CHECKSUM_FIELD` excluded).

    Stored under ``_ck`` by :func:`append_jsonl` and verified by
    :func:`read_jsonl`; records without the field (older stores) are
    accepted unverified, so the format change is purely additive.
    """
    body = {k: v for k, v in record.items() if k != CHECKSUM_FIELD}
    canon = json.dumps(body, sort_keys=True, default=str).encode("utf-8")
    return hashlib.blake2b(canon, digest_size=8).hexdigest()

#: Environment variable naming the log file (absent/empty = off).
LOG_ENV = "REPRO_LOG"

#: Environment variable for the minimum level (default ``debug``).
LOG_LEVEL_ENV = "REPRO_LOG_LEVEL"

LEVELS: Dict[str, int] = {"debug": 10, "info": 20, "warn": 30, "error": 40}


def read_jsonl(path: Union[str, os.PathLike],
               verify: bool = True) -> Iterator[Dict[str, Any]]:
    """Yield JSON records from a JSONL file, tolerating a torn tail.

    The shared reader for every append-only JSONL artifact in this
    package (log, progress files, ledger-style journals): unparseable
    or non-object lines — the torn tail of a killed appender — are
    skipped, never raised.  Records carrying a ``_ck`` checksum are
    verified (and the field stripped); a mismatch — a silently
    corrupted line — is skipped like a torn one.  Records without the
    field (older stores) pass through unverified.
    """
    try:
        fh = open(path, "r", encoding="utf-8")
    except OSError:
        return
    with fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except ValueError:
                continue  # torn tail from a killed appender
            if not isinstance(rec, dict):
                continue
            ck = rec.pop(CHECKSUM_FIELD, None)
            if verify and ck is not None and ck != record_checksum(rec):
                continue  # corrupted in place: treat like a torn line
            yield rec


def append_jsonl(path: Path, record: Dict[str, Any],
                 fsync: bool = False, checksum: bool = True) -> int:
    """Append one record as one atomic ``O_APPEND`` line; returns the
    number of bytes written.

    If the file's current tail is torn (no trailing newline), a
    newline is prepended so the fragment stays skippable instead of
    corrupting this record too — the ledger's heal-on-append rule.
    ``checksum`` stamps the record with ``_ck`` (see
    :func:`record_checksum`); ``fsync`` forces durability for stores
    that must survive a host crash (the campaign journal, the ledger).

    This is the instrumented seam for host-fault injection: an active
    :class:`~repro.resilience.chaos.ChaosPolicy` may tear the write or
    raise a simulated ``ENOSPC`` here.
    """
    path = Path(path)
    if checksum:
        record = dict(record)
        record[CHECKSUM_FIELD] = record_checksum(record)
    data = (json.dumps(record, sort_keys=True, default=str) + "\n")\
        .encode("utf-8")
    try:
        with path.open("rb") as fh:
            fh.seek(-1, os.SEEK_END)
            if fh.read(1) != b"\n":
                data = b"\n" + data
    except (OSError, ValueError):
        pass  # new/empty file: nothing to heal
    chaos = _active_chaos()
    if chaos is not None:
        data = chaos.mangle_append(path.name, data)  # may raise ENOSPC
    fd = os.open(path, os.O_APPEND | os.O_CREAT | os.O_WRONLY, 0o644)
    try:
        os.write(fd, data)
        if fsync:
            os.fsync(fd)
    finally:
        os.close(fd)
    return len(data)


def _active_chaos():
    """Late import of :func:`repro.resilience.chaos.active_chaos` —
    obs must stay importable without the resilience package loaded."""
    from repro.resilience.chaos import active_chaos

    return active_chaos()


class NullLog:
    """Shared do-nothing logger; the default everywhere.

    Every emit method is a no-op and :meth:`bind` returns ``self``, so
    call sites can thread a logger unconditionally and pay one
    attribute load when logging is off.
    """

    enabled = False
    path: Optional[Path] = None
    context: Dict[str, Any] = {}

    def bind(self, **_context: Any) -> "NullLog":
        return self

    def log(self, level: str, event: str, **fields: Any) -> None:
        pass

    def debug(self, event: str, **fields: Any) -> None:
        pass

    def info(self, event: str, **fields: Any) -> None:
        pass

    def warn(self, event: str, **fields: Any) -> None:
        pass

    def error(self, event: str, **fields: Any) -> None:
        pass


#: The process-wide disabled logger.
NULL_LOG = NullLog()


class StructLog(NullLog):
    """Leveled JSONL event log with bound correlation context.

    ``bind(**context)`` returns a child logger appending the given
    fields to every record — the idiom for correlation IDs::

        log = StructLog("run.log.jsonl").bind(run="compare", cell="spmv/ecc")
        log.info("cell.start", scale=0.3)

    A bound child shares the parent's file; records from any number of
    processes interleave whole-line-atomically (see module docstring).
    """

    enabled = True

    def __init__(self, path: Union[str, os.PathLike], level: str = "debug",
                 context: Optional[Dict[str, Any]] = None):
        if level not in LEVELS:
            raise ValueError(
                f"unknown log level {level!r}; known: {sorted(LEVELS)}")
        self.path = Path(path)
        self.level = level
        self.threshold = LEVELS[level]
        self.context = dict(context or {})
        self._warned = False

    @classmethod
    def default(cls) -> NullLog:
        """The environment-configured logger (``REPRO_LOG`` /
        ``REPRO_LOG_LEVEL``), or :data:`NULL_LOG` when unset."""
        path = os.environ.get(LOG_ENV, "").strip()
        if not path or path.lower() in ("off", "0", "none", "disabled"):
            return NULL_LOG
        level = os.environ.get(LOG_LEVEL_ENV, "").strip().lower() or "debug"
        if level not in LEVELS:
            level = "debug"
        return cls(path, level=level)

    def bind(self, **context: Any) -> "StructLog":
        merged = dict(self.context)
        merged.update(context)
        return StructLog(self.path, level=self.level, context=merged)

    # -- writing -------------------------------------------------------------

    def log(self, level: str, event: str, **fields: Any) -> None:
        """Append one record; a failing log never fails the run."""
        if LEVELS.get(level, 100) < self.threshold:
            return
        record: Dict[str, Any] = {
            "ts": round(time.time(), 3),
            "level": level,
            "event": event,
            "pid": os.getpid(),
        }
        record.update(self.context)
        record.update(fields)
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            append_jsonl(self.path, record)
        except OSError as exc:
            if not self._warned:
                self._warned = True
                print(f"warning: structured log append to {self.path} "
                      f"failed: {exc}", file=sys.stderr)

    def debug(self, event: str, **fields: Any) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields: Any) -> None:
        self.log("info", event, **fields)

    def warn(self, event: str, **fields: Any) -> None:
        self.log("warn", event, **fields)

    def error(self, event: str, **fields: Any) -> None:
        self.log("error", event, **fields)

    # -- reading -------------------------------------------------------------

    def records(self) -> List[Dict[str, Any]]:
        """All readable records, oldest first (torn tail skipped)."""
        return list(read_jsonl(self.path))


def resolve_log(log: Union[None, bool, str, os.PathLike, NullLog]
                ) -> NullLog:
    """Normalize the ``log=`` argument accepted across the repo.

    ``None``/``True`` — the environment default (off unless
    ``REPRO_LOG`` is set); ``False`` — disabled; a path — a
    :class:`StructLog` on that file; a logger — itself.
    """
    if log is False:
        return NULL_LOG
    if log is None or log is True:
        return StructLog.default()
    if isinstance(log, NullLog):
        return log
    return StructLog(log)


def run_context(**extra: Any) -> Dict[str, Any]:
    """Standard correlation context for a new top-level logger:
    repo git SHA plus whatever the caller adds (cell, fidelity,
    worker role...)."""
    from repro.obs.ledger import git_sha

    ctx: Dict[str, Any] = {}
    sha = git_sha()
    if sha:
        ctx["git_sha"] = sha[:12]
    ctx.update(extra)
    return ctx
