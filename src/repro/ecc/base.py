"""Common interface for block error codes.

Codes operate on byte strings.  A codeword is ``data || check`` —
systematic layout — so the protection layer can compute metadata sizes
directly from :attr:`CodeSpec.check_bytes`.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import Optional


class DecodeStatus(enum.Enum):
    """Outcome of decoding a (possibly corrupted) codeword."""

    #: Syndrome clean: no error detected.
    CLEAN = "clean"
    #: An error was detected and fully corrected.
    CORRECTED = "corrected"
    #: An error was detected but cannot be corrected (DUE).
    DETECTED_UNCORRECTABLE = "due"
    #: The codeword decoded "successfully" but to wrong data — only
    #: reportable by fault-injection campaigns that know ground truth.
    MISCORRECTED = "miscorrected"
    #: Tagged codes only: data is clean but the tag does not match.
    TAG_MISMATCH = "tag_mismatch"


@dataclass(frozen=True)
class CodeSpec:
    """Static shape of a code: data/check sizes in bits."""

    name: str
    data_bits: int
    check_bits: int

    @property
    def data_bytes(self) -> int:
        return (self.data_bits + 7) // 8

    @property
    def check_bytes(self) -> int:
        return (self.check_bits + 7) // 8

    @property
    def codeword_bytes(self) -> int:
        return self.data_bytes + self.check_bytes

    @property
    def redundancy(self) -> float:
        """Check bits as a fraction of data bits."""
        return self.check_bits / self.data_bits


@dataclass
class DecodeResult:
    """What a decoder reports for one codeword."""

    status: DecodeStatus
    data: bytes
    #: Bit positions corrected (data-relative), when applicable.
    corrected_bits: Optional[tuple] = None

    @property
    def ok(self) -> bool:
        """True when the decoder believes the data is good."""
        return self.status in (DecodeStatus.CLEAN, DecodeStatus.CORRECTED)


class ErrorCode(abc.ABC):
    """A systematic block code over byte strings."""

    spec: CodeSpec

    @abc.abstractmethod
    def encode(self, data: bytes) -> bytes:
        """Return the check bytes for ``data`` (not the full codeword)."""

    @abc.abstractmethod
    def decode(self, data: bytes, check: bytes) -> DecodeResult:
        """Check (and possibly correct) ``data`` against ``check``."""

    def codeword(self, data: bytes) -> bytes:
        """Convenience: systematic codeword ``data || check``."""
        return data + self.encode(data)

    def _require_sizes(self, data: bytes, check: Optional[bytes] = None) -> None:
        if len(data) != self.spec.data_bytes:
            raise ValueError(
                f"{self.spec.name}: expected {self.spec.data_bytes} data bytes, "
                f"got {len(data)}"
            )
        if check is not None and len(check) != self.spec.check_bytes:
            raise ValueError(
                f"{self.spec.name}: expected {self.spec.check_bytes} check bytes, "
                f"got {len(check)}"
            )
