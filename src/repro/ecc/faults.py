"""Fault models and injection campaigns.

A fault model picks bit positions to flip inside a codeword
(``data || check``, little-endian bit order).  A campaign runs many
(random data, random fault) trials through a code and classifies each
decode against ground truth, yielding the detection/correction coverage
table the reliability experiment (T5) reports.
"""

from __future__ import annotations

import abc
import hashlib
import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.ecc.base import DecodeStatus, ErrorCode
from repro.ecc.gf import flip_bits


class FaultModel(abc.ABC):
    """Chooses which codeword bits a fault flips."""

    name: str

    @abc.abstractmethod
    def sample(self, codeword_bits: int, rng: random.Random) -> List[int]:
        """Return the (non-empty) list of bit positions to flip."""


@dataclass
class SingleBitFault(FaultModel):
    """One random bit flip — the canonical soft error."""

    name: str = "single-bit"

    def sample(self, codeword_bits: int, rng: random.Random) -> List[int]:
        return [rng.randrange(codeword_bits)]


@dataclass
class MultiBitFault(FaultModel):
    """``count`` independent random bit flips."""

    count: int = 2
    name: str = field(default="")

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("count must be >= 1")
        if not self.name:
            self.name = f"{self.count}-random-bits"

    def sample(self, codeword_bits: int, rng: random.Random) -> List[int]:
        return rng.sample(range(codeword_bits), self.count)


@dataclass
class BurstFault(FaultModel):
    """A burst: flips confined to a window of ``length`` adjacent bits.

    The first and last bit of the window always flip (otherwise it
    would be a shorter burst); interior bits flip with probability 1/2.
    Models the spatially-correlated multi-bit upsets beam studies see.
    """

    length: int = 4
    name: str = field(default="")

    def __post_init__(self) -> None:
        if self.length < 2:
            raise ValueError("burst length must be >= 2")
        if not self.name:
            self.name = f"burst-{self.length}"

    def sample(self, codeword_bits: int, rng: random.Random) -> List[int]:
        if self.length > codeword_bits:
            raise ValueError("burst longer than codeword")
        start = rng.randrange(codeword_bits - self.length + 1)
        bits = [start, start + self.length - 1]
        for off in range(1, self.length - 1):
            if rng.random() < 0.5:
                bits.append(start + off)
        return bits


@dataclass
class ChipFault(FaultModel):
    """A whole-symbol (device) failure: random flips inside one aligned
    ``symbol_bits``-wide symbol — what chipkill codes are built for."""

    symbol_bits: int = 8
    name: str = field(default="")

    def __post_init__(self) -> None:
        if self.symbol_bits < 2:
            raise ValueError("symbol_bits must be >= 2")
        if not self.name:
            self.name = f"chip-{self.symbol_bits}b"

    def sample(self, codeword_bits: int, rng: random.Random) -> List[int]:
        symbols = codeword_bits // self.symbol_bits
        if symbols == 0:
            raise ValueError("codeword smaller than one symbol")
        symbol = rng.randrange(symbols)
        base = symbol * self.symbol_bits
        pattern = rng.randrange(1, 1 << self.symbol_bits)
        return [base + i for i in range(self.symbol_bits) if pattern & (1 << i)]


@dataclass
class CampaignResult:
    """Coverage classification over a fault-injection campaign."""

    code_name: str
    fault_name: str
    trials: int
    corrected: int = 0
    detected: int = 0
    miscorrected: int = 0
    undetected: int = 0
    benign: int = 0

    @property
    def sdc(self) -> int:
        """Silent data corruptions: wrong data believed good."""
        return self.miscorrected + self.undetected

    def rate(self, count: int) -> float:
        return count / self.trials if self.trials else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Rates plus raw counts; safe for ``trials == 0`` (all rates 0.0)."""
        return {
            "code": self.code_name,
            "fault": self.fault_name,
            "trials": self.trials,
            "corrected": self.corrected,
            "detected": self.detected,
            "sdc": self.sdc,
            "benign": self.benign,
            "corrected_rate": self.rate(self.corrected),
            "detected_rate": self.rate(self.detected),
            "sdc_rate": self.rate(self.sdc),
            "benign_rate": self.rate(self.benign),
        }


class FaultCampaign:
    """Monte-Carlo fault injection against one code."""

    def __init__(self, code: ErrorCode, seed: int = 1):
        self.code = code
        self.seed = seed

    def _trial_rng(self, fault_name: str, trial: int) -> random.Random:
        """A stable per-trial RNG stream.

        Seeded from ``(seed, fault name, trial index)`` via blake2b, so
        trial *i* sees identical randomness regardless of how many
        trials the campaign runs and of ``PYTHONHASHSEED`` — results
        are reproducible across processes and a 100-trial campaign is a
        strict prefix of a 1000-trial one.
        """
        digest = hashlib.blake2b(
            f"{self.seed}:{fault_name}:{trial}".encode(), digest_size=8
        ).digest()
        return random.Random(int.from_bytes(digest, "little"))

    def run(self, fault: FaultModel, trials: int = 1000) -> CampaignResult:
        spec = self.code.spec
        result = CampaignResult(spec.name, fault.name, trials)
        codeword_bits = spec.codeword_bytes * 8
        for trial in range(trials):
            rng = self._trial_rng(fault.name, trial)
            data = bytes(rng.randrange(256) for _ in range(spec.data_bytes))
            check = self.code.encode(data)
            flips = fault.sample(codeword_bits, rng)
            corrupted = flip_bits(data + check, flips)
            bad_data = corrupted[: spec.data_bytes]
            bad_check = corrupted[spec.data_bytes:]
            outcome = self.code.decode(bad_data, bad_check)
            self._classify(result, outcome.status, outcome.data, data, bad_data)
        return result

    @staticmethod
    def _classify(result: CampaignResult, status: DecodeStatus,
                  decoded: bytes, truth: bytes, corrupted: bytes) -> None:
        if status is DecodeStatus.CLEAN:
            if corrupted == truth:
                result.benign += 1       # flips landed only in check bits
            else:
                result.undetected += 1   # SDC: bad data passed as clean
        elif status is DecodeStatus.CORRECTED:
            if decoded == truth:
                result.corrected += 1
            else:
                result.miscorrected += 1
        else:
            result.detected += 1

    def sweep(self, faults: Sequence[FaultModel], trials: int = 1000) -> List[CampaignResult]:
        """Run one campaign per fault model."""
        return [self.run(fault, trials) for fault in faults]
