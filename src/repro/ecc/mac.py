"""Truncated keyed MACs for integrity metadata.

Memory-encryption engines bind a short (32-64 bit) MAC to each
protection granule; an attacker (or an undetected multi-bit error)
flipping data without the key is caught with probability
``1 - 2^-bits``.  We model this with a keyed BLAKE2b truncation —
cryptographically honest, dependency-free, and fast enough for the
functional-check path.
"""

from __future__ import annotations

import hashlib

from repro.ecc.base import CodeSpec, DecodeResult, DecodeStatus, ErrorCode


class TruncatedMac(ErrorCode):
    """Keyed MAC truncated to ``mac_bits`` (multiple of 8, 8..128)."""

    def __init__(self, data_bytes: int, mac_bits: int = 64,
                 key: bytes = b"cachecraft-integrity-key"):
        if data_bytes < 1:
            raise ValueError("data_bytes must be >= 1")
        if mac_bits % 8 or not 8 <= mac_bits <= 128:
            raise ValueError("mac_bits must be a multiple of 8 in [8, 128]")
        self._digest_bytes = mac_bits // 8
        self._key = key
        self.spec = CodeSpec(name=f"mac{mac_bits}", data_bits=data_bytes * 8,
                             check_bits=mac_bits)

    def tag(self, data: bytes, tweak: int = 0) -> bytes:
        """MAC of ``data``; ``tweak`` binds the granule address in."""
        h = hashlib.blake2b(
            data,
            digest_size=self._digest_bytes,
            key=self._key,
            salt=tweak.to_bytes(16, "little", signed=False)[:16],
        )
        return h.digest()

    def encode(self, data: bytes) -> bytes:
        self._require_sizes(data)
        return self.tag(data)

    def decode(self, data: bytes, check: bytes) -> DecodeResult:
        self._require_sizes(data, check)
        if self.tag(data) == check:
            return DecodeResult(DecodeStatus.CLEAN, data)
        return DecodeResult(DecodeStatus.DETECTED_UNCORRECTABLE, data)
