"""Reed-Solomon codes over GF(2^8).

RS(n, k) with ``2t = n - k`` check symbols corrects up to ``t``
arbitrary byte errors per codeword — the standard route to
chipkill-class protection, where each DRAM device contributes whole
symbols and a dead device corrupts aligned bytes that a ``t >= 1``
symbol code can repair.

Decoding is the classical pipeline: syndromes, Berlekamp-Massey for the
error locator, Chien search for the roots, Forney for the magnitudes.
The generator uses the ``b = 0`` convention: ``g(x) = prod (x - a^i)``
for ``i in [0, 2t)`` and syndromes ``S_i = r(a^i)``.
"""

from __future__ import annotations

from typing import List

from repro.ecc.base import CodeSpec, DecodeResult, DecodeStatus, ErrorCode
from repro.ecc.gf import GF8_EXP, gf8_div, gf8_mul, gf8_pow, poly_eval, poly_mul


class ReedSolomonCode(ErrorCode):
    """Systematic RS over GF(2^8): codeword = data bytes || check bytes.

    The first data byte is the highest-degree coefficient of the
    codeword polynomial (network order), matching the usual systematic
    encoder built from polynomial long division.
    """

    def __init__(self, data_bytes: int, check_symbols: int):
        if data_bytes < 1:
            raise ValueError("data_bytes must be >= 1")
        if check_symbols < 2 or check_symbols % 2:
            raise ValueError("check_symbols must be an even number >= 2")
        n = data_bytes + check_symbols
        if n > 255:
            raise ValueError(f"codeword length {n} exceeds GF(2^8) limit of 255")
        self._n = n
        self._k = data_bytes
        self._t = check_symbols // 2
        self.spec = CodeSpec(name=f"rs({n},{data_bytes})",
                             data_bits=data_bytes * 8, check_bits=check_symbols * 8)
        # g(x) = prod_{i=0}^{2t-1} (x - alpha^i), lowest degree first.
        gen = [1]
        for i in range(check_symbols):
            gen = poly_mul(gen, [GF8_EXP[i], 1])
        # For the division-based encoder we want highest degree first,
        # normalized (leading coefficient is always 1).
        self._gen_hi_first = list(reversed(gen))

    @property
    def t(self) -> int:
        """Maximum correctable symbol errors."""
        return self._t

    # -- encoding ----------------------------------------------------------

    def encode(self, data: bytes) -> bytes:
        self._require_sizes(data)
        twot = 2 * self._t
        rem = [0] * twot
        for byte in data:
            factor = byte ^ rem[0]
            rem = rem[1:] + [0]
            if factor:
                for i in range(twot):
                    coeff = self._gen_hi_first[i + 1]
                    if coeff:
                        rem[i] ^= gf8_mul(coeff, factor)
        return bytes(rem)

    # -- decoding ----------------------------------------------------------

    def _syndromes(self, codeword: bytes) -> List[int]:
        out = []
        for i in range(2 * self._t):
            x = GF8_EXP[i]
            acc = 0
            for byte in codeword:
                acc = gf8_mul(acc, x) ^ byte
            out.append(acc)
        return out

    @staticmethod
    def _berlekamp_massey(syndromes: List[int]) -> List[int]:
        """Error-locator polynomial (lowest degree first, locator[0] == 1)."""
        locator = [1]
        backup = [1]
        errors = 0          # current L
        shift = 1           # m
        prev_delta = 1      # b
        for step, syndrome in enumerate(syndromes):
            delta = syndrome
            for i in range(1, errors + 1):
                delta ^= gf8_mul(locator[i], syndromes[step - i])
            if delta == 0:
                shift += 1
                continue
            scale = gf8_div(delta, prev_delta)
            needed = len(backup) + shift
            if needed > len(locator):
                locator = locator + [0] * (needed - len(locator))
            if 2 * errors <= step:
                saved = list(locator[: errors + 1])
                for i, coeff in enumerate(backup):
                    if coeff:
                        locator[i + shift] ^= gf8_mul(scale, coeff)
                errors = step + 1 - errors
                backup = saved
                prev_delta = delta
                shift = 1
            else:
                for i, coeff in enumerate(backup):
                    if coeff:
                        locator[i + shift] ^= gf8_mul(scale, coeff)
                shift += 1
        locator = locator[: errors + 1]
        while len(locator) > 1 and locator[-1] == 0:
            locator.pop()
        return locator

    def _find_error_positions(self, locator: List[int]) -> List[int]:
        """Chien search.  Returns codeword byte indices, or [] on failure."""
        positions = []
        degree = len(locator) - 1
        for pos in range(self._n):
            power = self._n - 1 - pos  # degree of this byte's term
            x_inv = gf8_pow(GF8_EXP[1], -power) if power else 1
            if poly_eval(locator, x_inv) == 0:
                positions.append(pos)
        if len(positions) != degree:
            return []
        return positions

    def decode(self, data: bytes, check: bytes) -> DecodeResult:
        self._require_sizes(data, check)
        codeword = bytearray(data + check)
        syndromes = self._syndromes(bytes(codeword))
        if not any(syndromes):
            return DecodeResult(DecodeStatus.CLEAN, data)

        locator = self._berlekamp_massey(syndromes)
        errors = len(locator) - 1
        if errors == 0 or errors > self._t:
            return DecodeResult(DecodeStatus.DETECTED_UNCORRECTABLE, data)
        positions = self._find_error_positions(locator)
        if not positions:
            return DecodeResult(DecodeStatus.DETECTED_UNCORRECTABLE, data)

        # Forney: omega(x) = [S(x) * lambda(x)] mod x^{2t}; with b = 0
        # the magnitude at location X_j is X_j * omega(X_j^-1) / lambda'(X_j^-1).
        twot = 2 * self._t
        omega = poly_mul(list(syndromes), locator)[:twot]
        deriv = [locator[i] if i % 2 == 1 else 0 for i in range(1, len(locator))]
        for pos in positions:
            power = self._n - 1 - pos
            x_j = gf8_pow(GF8_EXP[1], power) if power else 1
            x_inv = gf8_pow(GF8_EXP[1], -power) if power else 1
            den = poly_eval(deriv, x_inv)
            if den == 0:
                return DecodeResult(DecodeStatus.DETECTED_UNCORRECTABLE, data)
            magnitude = gf8_mul(x_j, gf8_div(poly_eval(omega, x_inv), den))
            codeword[pos] ^= magnitude

        # A >t-error word can slip through with a consistent-looking
        # locator; re-checking the syndrome catches the inconsistent ones.
        if any(self._syndromes(bytes(codeword))):
            return DecodeResult(DecodeStatus.DETECTED_UNCORRECTABLE, data)
        fixed_data = bytes(codeword[: self._k])
        corrected_bits = tuple(p * 8 for p in positions if p < self._k)
        return DecodeResult(DecodeStatus.CORRECTED, fixed_data,
                            corrected_bits=corrected_bits)
