"""Even parity over a data block — the weakest useful code.

Detects any odd number of bit flips; corrects nothing.  Used as the
bottom rung in reliability comparisons (Table T5) and for interleaved
per-byte parity variants.
"""

from __future__ import annotations

from repro.ecc.base import CodeSpec, DecodeResult, DecodeStatus, ErrorCode
from repro.ecc.gf import bytes_to_int, parity


class ParityCode(ErrorCode):
    """Even parity, optionally interleaved.

    With ``interleave=n`` the data bits are split round-robin into ``n``
    groups, each carrying its own parity bit; an ``n``-bit burst then
    lands one flip in each group and is always detected.
    """

    def __init__(self, data_bytes: int, interleave: int = 1):
        if data_bytes < 1:
            raise ValueError("data_bytes must be >= 1")
        if interleave < 1 or interleave > 64:
            raise ValueError("interleave must be in [1, 64]")
        self.interleave = interleave
        check_bits = interleave
        self.spec = CodeSpec(
            name=f"parity{interleave}x", data_bits=data_bytes * 8, check_bits=check_bits
        )
        # Precompute the group masks once.
        self._masks = []
        for g in range(interleave):
            mask = 0
            for bit in range(g, data_bytes * 8, interleave):
                mask |= 1 << bit
            self._masks.append(mask)

    def encode(self, data: bytes) -> bytes:
        self._require_sizes(data)
        vec = bytes_to_int(data)
        bits = 0
        for g, mask in enumerate(self._masks):
            if parity(vec & mask):
                bits |= 1 << g
        return bits.to_bytes(self.spec.check_bytes, "little")

    def decode(self, data: bytes, check: bytes) -> DecodeResult:
        self._require_sizes(data, check)
        expected = self.encode(data)
        if expected == check:
            return DecodeResult(DecodeStatus.CLEAN, data)
        return DecodeResult(DecodeStatus.DETECTED_UNCORRECTABLE, data)
