"""Alias-free tagged ECC (Implicit-Memory-Tagging style).

A tagged code folds a small memory tag into the ECC check bits: the
encoder computes ``check = H_d * data  XOR  H_t * tag`` and the decoder
recomputes the syndrome assuming the *expected* tag.  Three outcomes
must be distinguishable:

* syndrome 0 — data clean, tag matches;
* syndrome equals a data/check column — single data error, corrected;
* syndrome equals ``H_t * (tag_delta)`` for some nonzero delta — data
  clean but the tag does not match (a memory-safety violation).

*Alias-free* means the third set of syndromes intersects neither zero
nor the single-error columns, so a tag mismatch is never mistaken for a
correctable error (which would silently "correct" a safety violation
away).  The constructor searches for tag columns satisfying this and
raises if the check-bit budget cannot support the requested tag width.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.ecc.base import CodeSpec, DecodeResult, DecodeStatus, ErrorCode
from repro.ecc.gf import bytes_to_int, int_to_bytes, matvec_gf2
from repro.ecc.hsiao import HsiaoCode, _min_check_bits


class TaggedHsiaoCode(ErrorCode):
    """Hsiao SEC-DED carrying a ``tag_bits``-wide implicit memory tag."""

    def __init__(self, data_bytes: int, tag_bits: int = 4,
                 check_bits: int = 0):
        if not 1 <= tag_bits <= 8:
            raise ValueError("tag_bits must be in [1, 8]")
        data_bits = data_bytes * 8
        r = check_bits or (_min_check_bits(data_bits) + 1)
        base: Optional[HsiaoCode] = None
        tag_cols = None
        while r <= _min_check_bits(data_bits) + 6:
            base = HsiaoCode(data_bytes, check_bits=r)
            tag_cols = self._find_tag_columns(base, tag_bits, r)
            if tag_cols is not None:
                break
            r += 1
        if tag_cols is None or base is None:
            raise ValueError(
                f"no alias-free tag assignment for {tag_bits} tag bits "
                f"on {data_bits} data bits"
            )
        self._base = base
        self._tag_bits = tag_bits
        self._tag_rows = self._columns_to_rows(tag_cols, r)
        self.spec = CodeSpec(
            name=f"tagged-hsiao({data_bits + r},{data_bits})+t{tag_bits}",
            data_bits=data_bits,
            check_bits=r,
        )
        # Precompute syndrome -> tag delta for every nonzero delta.
        self._delta_syndromes: Dict[int, int] = {}
        for delta in range(1, 1 << tag_bits):
            self._delta_syndromes[matvec_gf2(self._tag_rows, delta)] = delta

    @property
    def tag_bits(self) -> int:
        return self._tag_bits

    @staticmethod
    def _columns_to_rows(cols, r):
        rows = [0] * r
        for j, col in enumerate(cols):
            for i in range(r):
                if col & (1 << i):
                    rows[i] |= 1 << j
        return rows

    @staticmethod
    def _find_tag_columns(base: HsiaoCode, tag_bits: int, r: int):
        """Greedy search for tag columns whose delta-syndromes are alias-free."""
        forbidden = set(base._column_to_bit)            # single data-bit columns
        forbidden.update(1 << i for i in range(r))      # single check-bit columns
        forbidden.add(0)
        used = set(base._column_to_bit)

        def deltas_ok(cols):
            rows = TaggedHsiaoCode._columns_to_rows(cols, r)
            seen = set()
            for delta in range(1, 1 << len(cols)):
                s = matvec_gf2(rows, delta)
                if s in forbidden or s in seen:
                    return False
                seen.add(s)
            return True

        chosen = []
        # Candidates: odd-weight columns not used by data bits, densest
        # first — dense columns keep XOR-combinations away from the
        # sparse single-error columns.
        candidates = sorted(
            (c for c in range(1, 1 << r)
             if c.bit_count() % 2 == 1 and c not in used and c not in forbidden),
            key=lambda c: -c.bit_count(),
        )
        for cand in candidates:
            chosen.append(cand)
            if not deltas_ok(chosen):
                chosen.pop()
            elif len(chosen) == tag_bits:
                return chosen
        return None

    # -- tagged interface ---------------------------------------------------

    def encode_tagged(self, data: bytes, tag: int) -> bytes:
        """Check bytes binding ``data`` to ``tag``."""
        self._require_sizes(data)
        if not 0 <= tag < (1 << self._tag_bits):
            raise ValueError(f"tag {tag} out of range for {self._tag_bits} bits")
        check = bytes_to_int(self._base.encode(data))
        check ^= matvec_gf2(self._tag_rows, tag)
        return int_to_bytes(check, self.spec.check_bytes)

    def decode_tagged(self, data: bytes, check: bytes, expected_tag: int) -> DecodeResult:
        """Verify data and tag together.

        A tag mismatch with clean data reports
        :attr:`DecodeStatus.TAG_MISMATCH`; single data errors under a
        matching tag are corrected as usual.
        """
        self._require_sizes(data, check)
        stored = bytes_to_int(check)
        stored ^= matvec_gf2(self._tag_rows, expected_tag)
        adjusted = int_to_bytes(stored, self.spec.check_bytes)
        syndrome = self._base.syndrome(data, adjusted)
        if syndrome == 0:
            return DecodeResult(DecodeStatus.CLEAN, data)
        if syndrome in self._delta_syndromes:
            return DecodeResult(DecodeStatus.TAG_MISMATCH, data)
        return self._base.decode(data, adjusted)

    # -- plain ErrorCode interface (tag 0) -----------------------------------

    def encode(self, data: bytes) -> bytes:
        return self.encode_tagged(data, 0)

    def decode(self, data: bytes, check: bytes) -> DecodeResult:
        return self.decode_tagged(data, check, 0)
