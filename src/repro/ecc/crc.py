"""Cyclic redundancy checks — detection-only codes.

Used for the "integrity metadata" protection configurations where the
metadata is a checksum rather than a correcting code, and as a
reference detector in the fault-injection experiments.
"""

from __future__ import annotations

from typing import Dict, List

from repro.ecc.base import CodeSpec, DecodeResult, DecodeStatus, ErrorCode

#: Well-known polynomials (reflected form), keyed by width.
STANDARD_POLYS: Dict[int, int] = {
    8: 0xAB,         # CRC-8/Maxim reflected
    16: 0xA001,      # CRC-16/IBM (ARC)
    32: 0xEDB88320,  # CRC-32 (IEEE 802.3)
}


class CrcCode(ErrorCode):
    """A table-driven reflected CRC of 8, 16, or 32 bits."""

    def __init__(self, data_bytes: int, width: int = 32, poly: int = 0):
        if width not in (8, 16, 32):
            raise ValueError("width must be 8, 16, or 32")
        if data_bytes < 1:
            raise ValueError("data_bytes must be >= 1")
        self._width = width
        self._poly = poly or STANDARD_POLYS[width]
        self._mask = (1 << width) - 1
        self.spec = CodeSpec(name=f"crc{width}", data_bits=data_bytes * 8,
                             check_bits=width)
        self._table = self._build_table()

    def _build_table(self) -> List[int]:
        table = []
        for byte in range(256):
            crc = byte
            for _ in range(8):
                if crc & 1:
                    crc = (crc >> 1) ^ self._poly
                else:
                    crc >>= 1
            table.append(crc & self._mask)
        return table

    def checksum(self, data: bytes) -> int:
        crc = self._mask  # init = all-ones
        for byte in data:
            crc = (crc >> 8) ^ self._table[(crc ^ byte) & 0xFF]
        return crc ^ self._mask  # final xor

    def encode(self, data: bytes) -> bytes:
        self._require_sizes(data)
        return self.checksum(data).to_bytes(self.spec.check_bytes, "little")

    def decode(self, data: bytes, check: bytes) -> DecodeResult:
        self._require_sizes(data, check)
        if self.encode(data) == check:
            return DecodeResult(DecodeStatus.CLEAN, data)
        return DecodeResult(DecodeStatus.DETECTED_UNCORRECTABLE, data)
