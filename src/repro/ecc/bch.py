"""Binary BCH codes with t = 2 (double-error correction).

SEC-DED corrects one bit and merely detects two; the next rung on the
binary-code ladder is a double-error-correcting BCH code, built from
the minimal polynomials of ``a`` and ``a^3`` over GF(2^m).  Its check
cost is ~2m bits (18 for m = 9), a fraction of what symbol codes
charge, which is why DEC-BCH is the standard proposal for stronger
on-die DRAM ECC.

This implementation is generic over ``m`` (the field degree), supports
shortening to any data size that fits, and uses the closed-form
two-error decoder: syndromes ``S1 = r(a)``, ``S3 = r(a^3)``; a single
error sits at ``log S1`` when ``S1^3 == S3``; otherwise the error-pair
locator ``x^2 + S1 x + (S3/S1 + S1^2)`` is solved by Chien search.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ecc.base import CodeSpec, DecodeResult, DecodeStatus, ErrorCode

#: Primitive polynomials for GF(2^m), m -> polynomial bits.
PRIMITIVE_POLYS: Dict[int, int] = {
    4: 0b1_0011,          # x^4 + x + 1
    5: 0b10_0101,         # x^5 + x^2 + 1
    6: 0b100_0011,        # x^6 + x + 1
    7: 0b1000_1001,       # x^7 + x^3 + 1
    8: 0b1_0001_1101,     # x^8 + x^4 + x^3 + x^2 + 1
    9: 0b10_0001_0001,    # x^9 + x^4 + 1
    10: 0b100_0000_1001,  # x^10 + x^3 + 1
    11: 0b1000_0000_0101,     # x^11 + x^2 + 1
    12: 0b1_0000_0101_0011,   # x^12 + x^6 + x^4 + x + 1
    13: 0b10_0000_0001_1011,  # x^13 + x^4 + x^3 + x + 1
}


class BinaryField:
    """GF(2^m) arithmetic via exp/log tables."""

    def __init__(self, m: int):
        try:
            poly = PRIMITIVE_POLYS[m]
        except KeyError:
            raise ValueError(f"no primitive polynomial recorded for m={m}")
        self.m = m
        self.order = (1 << m) - 1
        self.exp: List[int] = [0] * (2 * self.order)
        self.log: List[int] = [0] * (1 << m)
        x = 1
        for i in range(self.order):
            self.exp[i] = x
            self.log[x] = i
            x <<= 1
            if x >> m:
                x ^= poly
        for i in range(self.order, 2 * self.order):
            self.exp[i] = self.exp[i - self.order]

    def mul(self, a: int, b: int) -> int:
        """Field multiplication."""
        if a == 0 or b == 0:
            return 0
        return self.exp[self.log[a] + self.log[b]]

    def div(self, a: int, b: int) -> int:
        """Field division (b nonzero)."""
        if b == 0:
            raise ZeroDivisionError("GF(2^m) division by zero")
        if a == 0:
            return 0
        return self.exp[(self.log[a] - self.log[b]) % self.order]

    def pow_alpha(self, e: int) -> int:
        """alpha^e for any integer e."""
        return self.exp[e % self.order]


def _minimal_polynomial(field: BinaryField, exponent: int) -> int:
    """Binary minimal polynomial of alpha^exponent (bit i = coeff x^i)."""
    # Cyclotomic coset of the exponent under doubling.
    coset = []
    e = exponent % field.order
    while e not in coset:
        coset.append(e)
        e = (e * 2) % field.order
    # Product over the coset of (x - alpha^c), coefficients in GF(2^m)
    # that must collapse to {0, 1}.
    poly = [1]  # lowest degree first
    for c in coset:
        root = field.pow_alpha(c)
        nxt = [0] * (len(poly) + 1)
        for i, coeff in enumerate(poly):
            nxt[i + 1] ^= coeff
            nxt[i] ^= field.mul(coeff, root)
        poly = nxt
    bits = 0
    for i, coeff in enumerate(poly):
        if coeff not in (0, 1):
            raise AssertionError("minimal polynomial not binary")
        if coeff:
            bits |= 1 << i
    return bits


def _poly_mul_gf2(a: int, b: int) -> int:
    out = 0
    while b:
        if b & 1:
            out ^= a
        a <<= 1
        b >>= 1
    return out


def _poly_mod_gf2(value: int, modulus: int) -> int:
    mod_deg = modulus.bit_length() - 1
    while value.bit_length() - 1 >= mod_deg and value:
        shift = value.bit_length() - 1 - mod_deg
        value ^= modulus << shift
    return value


class BchCode(ErrorCode):
    """Shortened binary BCH with t = 2.

    ``data_bytes`` of payload protected by ``~2m`` check bits; corrects
    any two bit errors in the stored ``data || check`` bits.
    """

    def __init__(self, data_bytes: int, m: int = 0):
        if data_bytes < 1:
            raise ValueError("data_bytes must be >= 1")
        data_bits = data_bytes * 8
        if not m:
            # Smallest field whose code length fits data + ~2m checks.
            m = next((mm for mm in sorted(PRIMITIVE_POLYS)
                      if (1 << mm) - 1 >= data_bits + 2 * mm), 0)
            if not m:
                raise ValueError(f"{data_bits} data bits exceed the "
                                 "largest recorded BCH field")
        self.field = BinaryField(m)
        m1 = _minimal_polynomial(self.field, 1)
        m3 = _minimal_polynomial(self.field, 3)
        self._generator = _poly_mul_gf2(m1, m3)
        self._r = self._generator.bit_length() - 1  # check bits
        if data_bits + self._r > self.field.order:
            raise ValueError(
                f"data too large for GF(2^{m}) BCH (max "
                f"{self.field.order - self._r} data bits)")
        self._data_bits = data_bits
        self.spec = CodeSpec(name=f"bch-dec(m={m},{data_bits}+{self._r})",
                             data_bits=data_bits, check_bits=self._r)
        #: Used codeword length (shortened): check bits then data bits.
        self._length = self._r + data_bits

    @property
    def t(self) -> int:
        """Guaranteed correctable bit errors."""
        return 2

    # -- bit plumbing: coefficient i of the codeword polynomial is
    # check bit i (i < r) or data bit i - r.

    def _vector(self, data: bytes, check: bytes) -> int:
        return int.from_bytes(check, "little") \
            | int.from_bytes(data, "little") << self._r

    def encode(self, data: bytes) -> bytes:
        self._require_sizes(data)
        shifted = int.from_bytes(data, "little") << self._r
        rem = _poly_mod_gf2(shifted, self._generator)
        return rem.to_bytes(self.spec.check_bytes, "little")

    def _syndrome(self, vector: int, power: int) -> int:
        acc = 0
        field = self.field
        i = 0
        while vector:
            if vector & 1:
                acc ^= field.pow_alpha(power * i)
            vector >>= 1
            i += 1
        return acc

    def decode(self, data: bytes, check: bytes) -> DecodeResult:
        self._require_sizes(data, check)
        vector = self._vector(data, check)
        s1 = self._syndrome(vector, 1)
        s3 = self._syndrome(vector, 3)
        if s1 == 0 and s3 == 0:
            return DecodeResult(DecodeStatus.CLEAN, data)
        field = self.field
        if s1 != 0:
            s1_cubed = field.mul(field.mul(s1, s1), s1)
            if s1_cubed == s3:
                # Single error at bit position log(S1).
                position = field.log[s1]
                return self._fix(data, vector, (position,))
            # Double error: sigma(x) = 1 + S1 x + (S3/S1 + S1^2) x^2.
            sigma2 = field.div(s3, s1) ^ field.mul(s1, s1)
            roots = self._find_pair(s1, sigma2)
            if roots is not None:
                return self._fix(data, vector, roots)
        return DecodeResult(DecodeStatus.DETECTED_UNCORRECTABLE, data)

    def _find_pair(self, sigma1: int, sigma2: int) -> Optional[Tuple[int, int]]:
        """Chien search for the error pair.

        The two error locations ``X1, X2`` satisfy ``X1 + X2 = S1`` and
        ``X1 X2 = S3/S1 + S1^2``, i.e. they are the roots of
        ``y^2 + sigma1 y + sigma2``; scan ``y = alpha^p`` over the
        shortened length."""
        field = self.field
        found = []
        for position in range(self._length):
            x = field.pow_alpha(position)
            value = field.mul(x, x) ^ field.mul(sigma1, x) ^ sigma2
            if value == 0:
                found.append(position)
                if len(found) == 2:
                    return (found[0], found[1])
        return None

    def _fix(self, data: bytes, vector: int, positions) -> DecodeResult:
        for position in positions:
            if position >= self._length:
                # Error located in the shortened (always-zero) region:
                # cannot be a real correction.
                return DecodeResult(DecodeStatus.DETECTED_UNCORRECTABLE,
                                    data)
            vector ^= 1 << position
        fixed_data = (vector >> self._r).to_bytes(self.spec.data_bytes,
                                                  "little")
        data_positions = tuple(p - self._r for p in positions
                               if p >= self._r)
        return DecodeResult(DecodeStatus.CORRECTED, fixed_data,
                            corrected_bits=data_positions)
