"""Interleaved code organizations.

Beam studies of GPU DRAM (the authors' MICRO'21 line of work) show that
multi-bit errors cluster spatially: bursts along a device's data pins.
A single SEC-DED codeword miscorrects many such bursts (see T5's
burst-4 column).  The classic low-cost fix is *interleaving*: split the
data round-robin across ``ways`` independent codewords, so an N-bit
burst lands at most ``ceil(N / ways)`` errors in any one codeword — a
4-way interleaved SEC-DED corrects any 4-bit burst outright.

The cost is ``ways`` times the check bits of a ``1/ways``-size code
(slightly more bits than one big code, still far less than symbol
codes) and ``ways`` decoders.  :class:`InterleavedCode` wraps any
:class:`~repro.ecc.base.ErrorCode` factory.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

from repro.ecc.base import CodeSpec, DecodeResult, DecodeStatus, ErrorCode
from repro.ecc.hsiao import HsiaoCode


class InterleavedCode(ErrorCode):
    """Round-robin bit interleaving over ``ways`` inner codewords.

    Data bit ``i`` belongs to inner codeword ``i % ways``.  The outer
    check bytes are the concatenation of the inner codes' check bytes.
    """

    def __init__(self, data_bytes: int, ways: int = 4,
                 inner_factory: Callable[[int], ErrorCode] = HsiaoCode):
        if ways < 2:
            raise ValueError("ways must be >= 2 (1 way is just the inner code)")
        data_bits = data_bytes * 8
        if data_bits % ways:
            raise ValueError(f"{data_bits} data bits do not split into "
                             f"{ways} equal ways")
        inner_bits = data_bits // ways
        if inner_bits % 8:
            raise ValueError("each way must hold a whole number of bytes")
        self.ways = ways
        self._inner: List[ErrorCode] = [
            inner_factory(inner_bits // 8) for _ in range(ways)
        ]
        check_bits = sum(c.spec.check_bits for c in self._inner)
        # Each inner check field is padded to whole bytes in storage.
        self._inner_check_bytes = [c.spec.check_bytes for c in self._inner]
        if len(set(self._inner_check_bytes)) != 1:
            raise ValueError("inner codes must have equal check sizes")
        check_storage_bits = sum(self._inner_check_bytes) * 8
        self.spec = CodeSpec(
            name=f"{ways}x-interleaved-{self._inner[0].spec.name}",
            data_bits=data_bits, check_bits=check_storage_bits)
        del check_bits
        # Precompute the bit scatter/gather maps once.
        self._lane_bits = inner_bits
        self._maps = self._build_maps(data_bits, ways)

    @staticmethod
    def _build_maps(data_bits: int, ways: int) -> List[List[int]]:
        """maps[w] = global bit positions belonging to way w, in order."""
        return [list(range(w, data_bits, ways)) for w in range(ways)]

    # -- bit plumbing ---------------------------------------------------------

    def _split(self, data: bytes) -> List[bytes]:
        value = int.from_bytes(data, "little")
        out = []
        for way_map in self._maps:
            lane = 0
            for i, bit in enumerate(way_map):
                if value >> bit & 1:
                    lane |= 1 << i
            out.append(lane.to_bytes(self._lane_bits // 8, "little"))
        return out

    def _merge(self, lanes: List[bytes]) -> bytes:
        value = 0
        for way_map, lane_bytes in zip(self._maps, lanes):
            lane = int.from_bytes(lane_bytes, "little")
            for i, bit in enumerate(way_map):
                if lane >> i & 1:
                    value |= 1 << bit
        return value.to_bytes(self.spec.data_bytes, "little")

    def _interleave_check(self, parts: List[bytes]) -> bytes:
        """Bit-interleave the per-way check fields, so a burst in the
        stored check region also spreads across ways."""
        size = self._inner_check_bytes[0]
        total_bits = size * 8 * self.ways
        value = 0
        for way, part in enumerate(parts):
            lane = int.from_bytes(part, "little")
            for i in range(size * 8):
                if lane >> i & 1:
                    value |= 1 << (i * self.ways + way)
        return value.to_bytes(total_bits // 8, "little")

    def _split_check(self, check: bytes) -> List[bytes]:
        size = self._inner_check_bytes[0]
        value = int.from_bytes(check, "little")
        parts = []
        for way in range(self.ways):
            lane = 0
            for i in range(size * 8):
                if value >> (i * self.ways + way) & 1:
                    lane |= 1 << i
            parts.append(lane.to_bytes(size, "little"))
        return parts

    # -- ErrorCode interface ------------------------------------------------------

    def encode(self, data: bytes) -> bytes:
        self._require_sizes(data)
        lanes = self._split(data)
        return self._interleave_check(
            [code.encode(lane) for code, lane in zip(self._inner, lanes)])

    def decode(self, data: bytes, check: bytes) -> DecodeResult:
        self._require_sizes(data, check)
        lanes = self._split(data)
        checks = self._split_check(check)
        fixed_lanes: List[bytes] = []
        corrected: List[Tuple[int, ...]] = []
        status = DecodeStatus.CLEAN
        for way, (code, lane, lane_check) in enumerate(
                zip(self._inner, lanes, checks)):
            result = code.decode(lane, lane_check)
            if result.status is DecodeStatus.DETECTED_UNCORRECTABLE:
                return DecodeResult(DecodeStatus.DETECTED_UNCORRECTABLE, data)
            if result.status is DecodeStatus.CORRECTED:
                status = DecodeStatus.CORRECTED
                if result.corrected_bits:
                    corrected.append(tuple(
                        self._maps[way][b] for b in result.corrected_bits))
            fixed_lanes.append(result.data)
        if status is DecodeStatus.CLEAN:
            return DecodeResult(DecodeStatus.CLEAN, data)
        fixed = self._merge(fixed_lanes)
        bits = tuple(b for group in corrected for b in group)
        return DecodeResult(DecodeStatus.CORRECTED, fixed,
                            corrected_bits=bits)

    @property
    def burst_correction_length(self) -> int:
        """Longest burst guaranteed correctable (one bit per way)."""
        return self.ways
