"""Hamming codes: SEC and extended SEC-DED.

The classic positional construction: check bits sit at power-of-two
positions of the combined codeword, and the syndrome, read as a binary
number, names the erroneous position directly.  The extended variant
adds one overall parity bit, upgrading the code from SEC to SEC-DED.

These are textbook codes kept mostly for the reliability comparison;
the memory controller in the simulated system uses the Hsiao variant
(:mod:`repro.ecc.hsiao`), which has equal strength but balanced check
equations.
"""

from __future__ import annotations

from typing import List

from repro.ecc.base import CodeSpec, DecodeResult, DecodeStatus, ErrorCode
from repro.ecc.gf import bytes_to_int, int_to_bytes, parity


def check_bits_for(data_bits: int) -> int:
    """Minimum r with 2^r >= data_bits + r + 1."""
    r = 1
    while (1 << r) < data_bits + r + 1:
        r += 1
    return r


class HammingCode(ErrorCode):
    """Single-error-correcting Hamming code (no DED)."""

    def __init__(self, data_bytes: int):
        if data_bytes < 1:
            raise ValueError("data_bytes must be >= 1")
        data_bits = data_bytes * 8
        r = check_bits_for(data_bits)
        self.spec = CodeSpec(name=f"hamming({data_bits + r},{data_bits})",
                             data_bits=data_bits, check_bits=r)
        self._r = r
        self._data_bits = data_bits
        # Positions 1..n of the classical codeword; data bits fill the
        # non-power-of-two positions in order.
        self._data_positions: List[int] = []
        pos = 1
        while len(self._data_positions) < data_bits:
            if pos & (pos - 1):  # not a power of two
                self._data_positions.append(pos)
            pos += 1
        # For each check bit c (position 2^c), the mask of *data bit
        # indices* it covers.
        self._check_masks = [0] * r
        for idx, position in enumerate(self._data_positions):
            for c in range(r):
                if position & (1 << c):
                    self._check_masks[c] |= 1 << idx
        # Map a nonzero syndrome (= codeword position) back to a data
        # bit index, or None when it names a check bit.
        self._position_to_data = {p: i for i, p in enumerate(self._data_positions)}

    def encode(self, data: bytes) -> bytes:
        self._require_sizes(data)
        vec = bytes_to_int(data)
        check = 0
        for c, mask in enumerate(self._check_masks):
            if parity(vec & mask):
                check |= 1 << c
        return int_to_bytes(check, self.spec.check_bytes)

    def decode(self, data: bytes, check: bytes) -> DecodeResult:
        self._require_sizes(data, check)
        vec = bytes_to_int(data)
        stored = bytes_to_int(check)
        computed = bytes_to_int(self.encode(data))
        syndrome = stored ^ computed
        if syndrome == 0:
            return DecodeResult(DecodeStatus.CLEAN, data)
        if syndrome in self._position_to_data:
            idx = self._position_to_data[syndrome]
            vec ^= 1 << idx
            return DecodeResult(
                DecodeStatus.CORRECTED,
                int_to_bytes(vec, self.spec.data_bytes),
                corrected_bits=(idx,),
            )
        if syndrome < (1 << self._r) and syndrome & (syndrome - 1) == 0:
            # Error in a check bit itself: data is fine.
            return DecodeResult(DecodeStatus.CORRECTED, data, corrected_bits=())
        # Syndrome names a position beyond the codeword: detectable junk.
        return DecodeResult(DecodeStatus.DETECTED_UNCORRECTABLE, data)


class ExtendedHammingCode(ErrorCode):
    """Hamming SEC plus an overall parity bit: SEC-DED."""

    def __init__(self, data_bytes: int):
        self._inner = HammingCode(data_bytes)
        r = self._inner.spec.check_bits + 1
        self.spec = CodeSpec(
            name=f"ext-hamming({self._inner.spec.data_bits + r},"
                 f"{self._inner.spec.data_bits})",
            data_bits=self._inner.spec.data_bits,
            check_bits=r,
        )

    def encode(self, data: bytes) -> bytes:
        self._require_sizes(data)
        inner_check = self._inner.encode(data)
        overall = parity(bytes_to_int(data) ^ bytes_to_int(inner_check))
        bits = bytes_to_int(inner_check) | (overall << (self.spec.check_bits - 1))
        return int_to_bytes(bits, self.spec.check_bytes)

    def decode(self, data: bytes, check: bytes) -> DecodeResult:
        self._require_sizes(data, check)
        bits = bytes_to_int(check)
        overall_stored = (bits >> (self.spec.check_bits - 1)) & 1
        inner_bits = bits & ((1 << (self.spec.check_bits - 1)) - 1)
        inner_check = int_to_bytes(inner_bits, self._inner.spec.check_bytes)

        computed_overall = parity(bytes_to_int(data) ^ inner_bits)
        parity_mismatch = computed_overall != overall_stored
        inner_result = self._inner.decode(data, inner_check)

        if inner_result.status is DecodeStatus.CLEAN:
            if parity_mismatch:
                # Single flip in the overall parity bit itself.
                return DecodeResult(DecodeStatus.CORRECTED, data, corrected_bits=())
            return DecodeResult(DecodeStatus.CLEAN, data)
        if inner_result.status is DecodeStatus.CORRECTED:
            if parity_mismatch:
                # Odd total weight: genuine single error, corrected.
                return inner_result
            # Even weight with nonzero syndrome: double error detected.
            return DecodeResult(DecodeStatus.DETECTED_UNCORRECTABLE, data)
        return DecodeResult(DecodeStatus.DETECTED_UNCORRECTABLE, data)
