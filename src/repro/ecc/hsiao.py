"""Hsiao odd-weight-column SEC-DED code.

The workhorse DRAM ECC.  Compared to extended Hamming it has the same
(n, k) but every column of the parity-check matrix H has odd weight,
which (a) makes single-vs-double error classification a simple weight
test on the syndrome and (b) balances the fan-in of the check-bit
trees.  We construct H as ``[H_d | I_r]`` with the data columns drawn
from weight-3 then weight-5 (then 7, ...) vectors in lexicographic
order — the canonical minimal-weight construction.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List

from repro.ecc.base import CodeSpec, DecodeResult, DecodeStatus, ErrorCode
from repro.ecc.gf import bytes_to_int, int_to_bytes, matvec_gf2, popcount


def _min_check_bits(data_bits: int) -> int:
    """Smallest r with enough odd-weight non-unit columns: 2^(r-1) - r >= k."""
    r = 2
    while (1 << (r - 1)) - r < data_bits:
        r += 1
    return r


def _odd_weight_columns(r: int, count: int) -> List[int]:
    """First ``count`` odd-weight-(>=3) columns of length r, minimal weight first."""
    cols: List[int] = []
    weight = 3
    while len(cols) < count:
        if weight > r:
            raise ValueError(f"cannot build {count} odd-weight columns with r={r}")
        for bits in combinations(range(r), weight):
            col = 0
            for b in bits:
                col |= 1 << b
            cols.append(col)
            if len(cols) == count:
                break
        weight += 2
    return cols


class HsiaoCode(ErrorCode):
    """SEC-DED with odd-weight columns.  ``data_bytes`` up to 64 is typical."""

    def __init__(self, data_bytes: int, check_bits: int = 0):
        if data_bytes < 1:
            raise ValueError("data_bytes must be >= 1")
        data_bits = data_bytes * 8
        r = check_bits or _min_check_bits(data_bits)
        if (1 << (r - 1)) - r < data_bits:
            raise ValueError(f"check_bits={r} too small for {data_bits} data bits")
        self.spec = CodeSpec(name=f"hsiao({data_bits + r},{data_bits})",
                             data_bits=data_bits, check_bits=r)
        self._r = r
        self._columns = _odd_weight_columns(r, data_bits)
        # Row masks: row i of H_d selects the data bits whose column has
        # bit i set.  Encoding is then r masked parities.
        self._rows = [0] * r
        for j, col in enumerate(self._columns):
            for i in range(r):
                if col & (1 << i):
                    self._rows[i] |= 1 << j
        self._column_to_bit: Dict[int, int] = {c: j for j, c in enumerate(self._columns)}

    @property
    def h_rows(self) -> List[int]:
        """Rows of H_d as data-bit masks (for the tagged-code subclass)."""
        return list(self._rows)

    def encode(self, data: bytes) -> bytes:
        self._require_sizes(data)
        vec = bytes_to_int(data)
        check = matvec_gf2(self._rows, vec)
        return int_to_bytes(check, self.spec.check_bytes)

    def syndrome(self, data: bytes, check: bytes) -> int:
        """Raw syndrome bits (0 means clean)."""
        self._require_sizes(data, check)
        vec = bytes_to_int(data)
        return matvec_gf2(self._rows, vec) ^ bytes_to_int(check)

    def decode(self, data: bytes, check: bytes) -> DecodeResult:
        syndrome = self.syndrome(data, check)
        if syndrome == 0:
            return DecodeResult(DecodeStatus.CLEAN, data)
        weight = popcount(syndrome)
        if weight % 2 == 1:
            if syndrome in self._column_to_bit:
                bit = self._column_to_bit[syndrome]
                vec = bytes_to_int(data) ^ (1 << bit)
                return DecodeResult(
                    DecodeStatus.CORRECTED,
                    int_to_bytes(vec, self.spec.data_bytes),
                    corrected_bits=(bit,),
                )
            if weight == 1:
                # The flipped bit is one of the check bits; data intact.
                return DecodeResult(DecodeStatus.CORRECTED, data, corrected_bits=())
            # Odd weight but no matching column: >= 3 errors, detected.
            return DecodeResult(DecodeStatus.DETECTED_UNCORRECTABLE, data)
        # Even nonzero weight: double error detected.
        return DecodeResult(DecodeStatus.DETECTED_UNCORRECTABLE, data)
