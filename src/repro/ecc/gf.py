"""Finite-field helpers.

Two small toolkits live here:

* **GF(2) bit vectors** represented as Python ints (bit ``i`` of the
  int is element ``i`` of the vector).  These back the binary linear
  codes (Hamming, Hsiao, tagged ECC).
* **GF(2^8)** arithmetic with exp/log tables over the primitive
  polynomial ``x^8 + x^4 + x^3 + x^2 + 1`` (0x11D), backing the
  Reed-Solomon code.
"""

from __future__ import annotations

from typing import List

# ---------------------------------------------------------------------------
# GF(2) bit-vector helpers
# ---------------------------------------------------------------------------


def bytes_to_int(data: bytes) -> int:
    """Little-endian bytes -> bit-vector int (bit 0 = LSB of byte 0)."""
    return int.from_bytes(data, "little")


def int_to_bytes(value: int, length: int) -> bytes:
    """Bit-vector int -> little-endian bytes of the given length."""
    return value.to_bytes(length, "little")


def parity(value: int) -> int:
    """Parity (XOR-reduction) of all bits of a non-negative int."""
    return value.bit_count() & 1


def popcount(value: int) -> int:
    """Number of set bits."""
    return value.bit_count()


def dot_gf2(a: int, b: int) -> int:
    """GF(2) inner product of two bit vectors."""
    return parity(a & b)


def matvec_gf2(rows: List[int], vec: int) -> int:
    """Multiply a GF(2) matrix (list of row bit-masks) by a vector.

    Returns the result as a bit-vector int: bit ``i`` is
    ``parity(rows[i] & vec)``.
    """
    out = 0
    for i, row in enumerate(rows):
        if parity(row & vec):
            out |= 1 << i
    return out


def flip_bit(data: bytes, bit: int) -> bytes:
    """Return ``data`` with the given (little-endian) bit flipped."""
    if not 0 <= bit < len(data) * 8:
        raise ValueError(f"bit {bit} out of range for {len(data)} bytes")
    buf = bytearray(data)
    buf[bit // 8] ^= 1 << (bit % 8)
    return bytes(buf)


def flip_bits(data: bytes, bits) -> bytes:
    """Return ``data`` with every bit position in ``bits`` flipped."""
    buf = bytearray(data)
    for bit in bits:
        if not 0 <= bit < len(buf) * 8:
            raise ValueError(f"bit {bit} out of range for {len(buf)} bytes")
        buf[bit // 8] ^= 1 << (bit % 8)
    return bytes(buf)


# ---------------------------------------------------------------------------
# GF(2^8)
# ---------------------------------------------------------------------------

_PRIMITIVE_POLY = 0x11D
_FIELD_SIZE = 256

GF8_EXP: List[int] = [0] * (_FIELD_SIZE * 2)
GF8_LOG: List[int] = [0] * _FIELD_SIZE


def _build_tables() -> None:
    x = 1
    for i in range(_FIELD_SIZE - 1):
        GF8_EXP[i] = x
        GF8_LOG[x] = i
        x <<= 1
        if x & 0x100:
            x ^= _PRIMITIVE_POLY
    # Duplicate for mod-free multiplication.
    for i in range(_FIELD_SIZE - 1, _FIELD_SIZE * 2):
        GF8_EXP[i] = GF8_EXP[i - (_FIELD_SIZE - 1)]


_build_tables()


def gf8_mul(a: int, b: int) -> int:
    """Multiply in GF(2^8)."""
    if a == 0 or b == 0:
        return 0
    return GF8_EXP[GF8_LOG[a] + GF8_LOG[b]]


def gf8_div(a: int, b: int) -> int:
    """Divide in GF(2^8); b must be nonzero."""
    if b == 0:
        raise ZeroDivisionError("GF(2^8) division by zero")
    if a == 0:
        return 0
    return GF8_EXP[(GF8_LOG[a] - GF8_LOG[b]) % (_FIELD_SIZE - 1)]


def gf8_pow(a: int, n: int) -> int:
    """Raise to a (possibly negative) integer power in GF(2^8)."""
    if a == 0:
        if n <= 0:
            raise ZeroDivisionError("0 to a non-positive power")
        return 0
    return GF8_EXP[(GF8_LOG[a] * n) % (_FIELD_SIZE - 1)]


def gf8_inv(a: int) -> int:
    """Multiplicative inverse in GF(2^8)."""
    if a == 0:
        raise ZeroDivisionError("GF(2^8) inverse of zero")
    return GF8_EXP[(_FIELD_SIZE - 1) - GF8_LOG[a]]


def poly_eval(poly: List[int], x: int) -> int:
    """Evaluate a GF(2^8) polynomial (lowest-degree coefficient first)."""
    acc = 0
    for coeff in reversed(poly):
        acc = gf8_mul(acc, x) ^ coeff
    return acc


def poly_mul(a: List[int], b: List[int]) -> List[int]:
    """Multiply two GF(2^8) polynomials."""
    out = [0] * (len(a) + len(b) - 1)
    for i, ca in enumerate(a):
        if ca == 0:
            continue
        for j, cb in enumerate(b):
            if cb:
                out[i + j] ^= gf8_mul(ca, cb)
    return out
