"""Error-correcting and error-detecting codes.

This package implements, from first principles, the coding machinery a
memory-protection study needs:

* :mod:`repro.ecc.gf` — GF(2) bit-vector helpers and GF(2^8) tables;
* :mod:`repro.ecc.parity` — even/odd parity (the trivial baseline);
* :mod:`repro.ecc.hamming` — Hamming SEC and extended-Hamming SEC-DED;
* :mod:`repro.ecc.hsiao` — Hsiao odd-weight-column SEC-DED, the code
  used in practically every DRAM controller;
* :mod:`repro.ecc.reed_solomon` — Reed-Solomon over GF(2^8) for
  chipkill-style symbol correction;
* :mod:`repro.ecc.crc` — cyclic redundancy checks (detection only);
* :mod:`repro.ecc.mac` — truncated keyed MACs for integrity metadata;
* :mod:`repro.ecc.tagged` — alias-free *tagged* ECC in the spirit of
  Implicit Memory Tagging: the code simultaneously protects data and
  checks a small memory tag;
* :mod:`repro.ecc.faults` — fault models and injection campaigns.

All block codes implement the :class:`repro.ecc.base.ErrorCode`
interface so the protection layer and the reliability experiments can
treat them interchangeably.
"""

from repro.ecc.base import CodeSpec, DecodeResult, DecodeStatus, ErrorCode
from repro.ecc.bch import BchCode
from repro.ecc.crc import CrcCode
from repro.ecc.faults import (
    BurstFault,
    ChipFault,
    FaultCampaign,
    MultiBitFault,
    SingleBitFault,
)
from repro.ecc.hamming import ExtendedHammingCode, HammingCode
from repro.ecc.hsiao import HsiaoCode
from repro.ecc.interleaved import InterleavedCode
from repro.ecc.mac import TruncatedMac
from repro.ecc.parity import ParityCode
from repro.ecc.reed_solomon import ReedSolomonCode
from repro.ecc.tagged import TaggedHsiaoCode

__all__ = [
    "CodeSpec",
    "DecodeResult",
    "DecodeStatus",
    "ErrorCode",
    "ParityCode",
    "BchCode",
    "HammingCode",
    "ExtendedHammingCode",
    "HsiaoCode",
    "InterleavedCode",
    "ReedSolomonCode",
    "CrcCode",
    "TruncatedMac",
    "TaggedHsiaoCode",
    "SingleBitFault",
    "MultiBitFault",
    "BurstFault",
    "ChipFault",
    "FaultCampaign",
]
