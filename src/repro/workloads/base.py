"""Workload base classes and helpers."""

from __future__ import annotations

import abc
import random
from collections import OrderedDict
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Tuple, Type

from repro.gpu.trace import ComputeOp, MemoryOp, WarpOp

#: Heap base for workload arrays (granule/line/chunk aligned).
HEAP_BASE = 1 << 20


@dataclass
class GenContext:
    """Machine shape and sizing knobs handed to every generator."""

    num_sms: int = 8
    warps_per_sm: int = 12
    lanes: int = 32
    elem_bytes: int = 4
    seed: int = 42
    #: Global size multiplier: tests run ~0.25, benches 1.0.
    scale: float = 1.0
    line_bytes: int = 128
    sector_bytes: int = 32

    @property
    def total_warps(self) -> int:
        return self.num_sms * self.warps_per_sm

    def warp_rng(self, workload: str, sm_id: int, warp_id: int) -> random.Random:
        return random.Random(f"{self.seed}/{workload}/{sm_id}/{warp_id}")

    def scaled(self, n: int, minimum: int = 1) -> int:
        return max(minimum, int(n * self.scale))

    def scaled_dim(self, n: int, minimum: int = 1, dims: int = 2) -> int:
        """Scale one *dimension* of a ``dims``-dimensional extent so
        the total area/volume scales ~linearly with ``scale``.

        Each dimension shrinks by ``scale ** (1/dims)``: a 2D plane
        whose width and height both use ``dims=2`` scales its area by
        ``scale``; a 3D volume must pass ``dims=3`` (the old
        hard-coded square root made volumes scale as ``scale**1.5``).
        The default stays bit-compatible with the original 2D
        behavior (``1.0 / 2`` is exactly ``0.5``).
        """
        if dims < 1:
            raise ValueError("dims must be >= 1")
        return max(minimum, int(n * self.scale ** (1.0 / dims)))


class Workload(abc.ABC):
    """A named trace generator."""

    #: Registry key.
    name: str = ""
    #: Archetype label used in the characterization table (T2).
    category: str = ""

    def __init__(self, **params) -> None:
        self.params = params

    @abc.abstractmethod
    def warp_trace(self, sm_id: int, warp_id: int, ctx: GenContext) -> List[WarpOp]:
        """The full op list for one warp."""

    def build(self, ctx: GenContext) -> List[List[List[WarpOp]]]:
        """Traces for the whole machine: ``[sm][warp] -> ops``."""
        return [
            [self.warp_trace(sm, warp, ctx) for warp in range(ctx.warps_per_sm)]
            for sm in range(ctx.num_sms)
        ]

    # -- shared generator helpers ------------------------------------------------

    @staticmethod
    def coalesced(base: int, first_elem: int, lanes: int,
                  elem_bytes: int, is_store: bool = False) -> MemoryOp:
        """All lanes access consecutive elements — the coalesced ideal."""
        return MemoryOp(
            tuple(base + (first_elem + lane) * elem_bytes for lane in range(lanes)),
            is_store=is_store,
        )

    @staticmethod
    def gathered(base: int, indices, elem_bytes: int,
                 is_store: bool = False) -> MemoryOp:
        """Lane *l* accesses element ``indices[l]`` — arbitrary scatter."""
        return MemoryOp(
            tuple(base + int(i) * elem_bytes for i in indices), is_store=is_store
        )

    @staticmethod
    def compute(cycles: int) -> ComputeOp:
        return ComputeOp(max(1, cycles))

    def global_warp_id(self, sm_id: int, warp_id: int, ctx: GenContext) -> int:
        return sm_id * ctx.warps_per_sm + warp_id


#: name -> workload class.
WORKLOAD_REGISTRY: Dict[str, Type[Workload]] = {}


def register_workload(cls: Type[Workload]) -> Type[Workload]:
    """Class decorator adding a workload to the registry."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} has no name")
    if cls.name in WORKLOAD_REGISTRY:
        raise ValueError(f"duplicate workload {cls.name!r}")
    WORKLOAD_REGISTRY[cls.name] = cls
    return cls


def make_workload(name: str, **params) -> Workload:
    """Instantiate a registered workload by name."""
    try:
        cls = WORKLOAD_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; known: {sorted(WORKLOAD_REGISTRY)}"
        ) from None
    return cls(**params)


# -- trace memoization -------------------------------------------------------
#
# Trace generation is deterministic: (workload name, its params, every
# GenContext field) fully determines the op lists, and nothing mutates
# a built trace afterwards (ops are frozen dataclasses; SMs wrap each
# warp's list in a fresh iterator).  So `compare` over N schemes — or a
# parity test running event and functional back-to-back — can
# materialize each trace once and share it.

#: Maximum memoized traces per process.  Traces are the largest
#: allocation in a run; a small LRU covers the common loops (same
#: workload across schemes / fidelities) without hoarding memory.
TRACE_CACHE_CAPACITY = 16

_trace_cache: "OrderedDict[tuple, List[List[List[WarpOp]]]]" = OrderedDict()
_trace_hits = 0
_trace_misses = 0


def _trace_key(workload: Workload, ctx: GenContext) -> tuple:
    return (workload.name,
            tuple(sorted(workload.params.items())),
            tuple(sorted(asdict(ctx).items())))


def materialize(workload: Workload,
                ctx: GenContext) -> List[List[List[WarpOp]]]:
    """Memoized :meth:`Workload.build` (``[sm][warp] -> ops``).

    Callers must treat the returned traces as immutable — they are
    shared across runs in this process.
    """
    global _trace_hits, _trace_misses
    try:
        # Hashing happens at the probe, not at key construction, so
        # the unhashable-params fallback must cover the lookup too.
        key = _trace_key(workload, ctx)
        cached = _trace_cache.get(key)
    except TypeError:  # unhashable params: build uncached
        _trace_misses += 1
        return workload.build(ctx)
    if cached is not None:
        _trace_cache.move_to_end(key)
        _trace_hits += 1
        return cached
    _trace_misses += 1
    traces = workload.build(ctx)
    _trace_cache[key] = traces
    while len(_trace_cache) > TRACE_CACHE_CAPACITY:
        _trace_cache.popitem(last=False)
    return traces


def trace_cache_stats() -> Dict[str, int]:
    """Hit/miss/occupancy counters for ``cache stats`` debug output."""
    return {"entries": len(_trace_cache), "hits": _trace_hits,
            "misses": _trace_misses, "capacity": TRACE_CACHE_CAPACITY,
            "compiled_entries": len(_compiled_cache),
            "compiled_hits": _compiled_hits,
            "compiled_misses": _compiled_misses}


def trace_cache_clear() -> None:
    """Empty the trace memo and reset its hit/miss counters (tests)."""
    global _trace_hits, _trace_misses, _compiled_hits, _compiled_misses
    _trace_cache.clear()
    _trace_hits = 0
    _trace_misses = 0
    _compiled_cache.clear()
    _compiled_hits = 0
    _compiled_misses = 0


# -- compiled (columnar) artifacts -------------------------------------------
#
# The functional tier replays the columnar IR (see
# :mod:`repro.gpu.columnar`): coalescing runs once per memory op at
# compile time and the result is immutable (frozen numpy arrays), so
# the compiled form memoizes under the same determinism argument as
# the raw traces — plus the coalescing geometry, which is a machine
# property (the GPU's line/sector bytes), not a GenContext one.

#: Maximum memoized compiled artifacts per process (they are much
#: smaller than the op-list traces they are lowered from).
COMPILED_CACHE_CAPACITY = 16

_compiled_cache: "OrderedDict[tuple, object]" = OrderedDict()
_compiled_hits = 0
_compiled_misses = 0


def materialize_compiled(workload: Workload, ctx: GenContext,
                         line_bytes: int = 128, sector_bytes: int = 32):
    """Memoized columnar compilation of a workload's traces.

    Returns a :class:`repro.gpu.columnar.CompiledTrace` whose arrays
    are frozen — callers must treat it as immutable, exactly like
    :func:`materialize` output (it is shared across runs in this
    process).  Unhashable workload params fall back to an uncached
    build+compile, mirroring :func:`materialize`.  Raises
    ``ImportError`` when numpy is unavailable; callers that can fall
    back to the scalar op-list replay should catch it.
    """
    global _compiled_hits, _compiled_misses
    from repro.gpu.columnar import compile_trace

    try:
        # As in :func:`materialize`, the TypeError for unhashable
        # params surfaces when the key is *hashed* (the probe).
        key = (_trace_key(workload, ctx), line_bytes, sector_bytes)
        cached = _compiled_cache.get(key)
    except TypeError:  # unhashable params: compile uncached
        _compiled_misses += 1
        return compile_trace(materialize(workload, ctx),
                             line_bytes, sector_bytes)
    if cached is not None:
        _compiled_cache.move_to_end(key)
        _compiled_hits += 1
        return cached
    _compiled_misses += 1
    compiled = compile_trace(materialize(workload, ctx),
                             line_bytes, sector_bytes)
    _compiled_cache[key] = compiled
    while len(_compiled_cache) > COMPILED_CACHE_CAPACITY:
        _compiled_cache.popitem(last=False)
    return compiled


def compiled_digest(workload: Workload, ctx: GenContext,
                    line_bytes: int = 128, sector_bytes: int = 32) -> str:
    """Content address of a workload's compiled trace (see
    :attr:`repro.gpu.columnar.CompiledTrace.digest`) — what the result
    cache mixes into functional-tier keys."""
    return materialize_compiled(workload, ctx, line_bytes,
                                sector_bytes).digest


def array_layout(sizes_bytes: List[int], align: int = 4096,
                 base: int = HEAP_BASE) -> List[int]:
    """Lay out arrays back-to-back with alignment; returns base addresses."""
    bases = []
    addr = base
    for size in sizes_bytes:
        addr = (addr + align - 1) // align * align
        bases.append(addr)
        addr += size
    return bases
