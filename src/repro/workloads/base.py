"""Workload base classes and helpers."""

from __future__ import annotations

import abc
import random
from collections import OrderedDict
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Tuple, Type

from repro.gpu.trace import ComputeOp, MemoryOp, WarpOp

#: Heap base for workload arrays (granule/line/chunk aligned).
HEAP_BASE = 1 << 20


@dataclass
class GenContext:
    """Machine shape and sizing knobs handed to every generator."""

    num_sms: int = 8
    warps_per_sm: int = 12
    lanes: int = 32
    elem_bytes: int = 4
    seed: int = 42
    #: Global size multiplier: tests run ~0.25, benches 1.0.
    scale: float = 1.0
    line_bytes: int = 128
    sector_bytes: int = 32

    @property
    def total_warps(self) -> int:
        return self.num_sms * self.warps_per_sm

    def warp_rng(self, workload: str, sm_id: int, warp_id: int) -> random.Random:
        return random.Random(f"{self.seed}/{workload}/{sm_id}/{warp_id}")

    def scaled(self, n: int, minimum: int = 1) -> int:
        return max(minimum, int(n * self.scale))

    def scaled_dim(self, n: int, minimum: int = 1) -> int:
        """Scale a 2D/3D *dimension*: area/volume then scales ~linearly
        with ``scale`` instead of quadratically/cubically."""
        return max(minimum, int(n * self.scale ** 0.5))


class Workload(abc.ABC):
    """A named trace generator."""

    #: Registry key.
    name: str = ""
    #: Archetype label used in the characterization table (T2).
    category: str = ""

    def __init__(self, **params) -> None:
        self.params = params

    @abc.abstractmethod
    def warp_trace(self, sm_id: int, warp_id: int, ctx: GenContext) -> List[WarpOp]:
        """The full op list for one warp."""

    def build(self, ctx: GenContext) -> List[List[List[WarpOp]]]:
        """Traces for the whole machine: ``[sm][warp] -> ops``."""
        return [
            [self.warp_trace(sm, warp, ctx) for warp in range(ctx.warps_per_sm)]
            for sm in range(ctx.num_sms)
        ]

    # -- shared generator helpers ------------------------------------------------

    @staticmethod
    def coalesced(base: int, first_elem: int, lanes: int,
                  elem_bytes: int, is_store: bool = False) -> MemoryOp:
        """All lanes access consecutive elements — the coalesced ideal."""
        return MemoryOp(
            tuple(base + (first_elem + lane) * elem_bytes for lane in range(lanes)),
            is_store=is_store,
        )

    @staticmethod
    def gathered(base: int, indices, elem_bytes: int,
                 is_store: bool = False) -> MemoryOp:
        """Lane *l* accesses element ``indices[l]`` — arbitrary scatter."""
        return MemoryOp(
            tuple(base + int(i) * elem_bytes for i in indices), is_store=is_store
        )

    @staticmethod
    def compute(cycles: int) -> ComputeOp:
        return ComputeOp(max(1, cycles))

    def global_warp_id(self, sm_id: int, warp_id: int, ctx: GenContext) -> int:
        return sm_id * ctx.warps_per_sm + warp_id


#: name -> workload class.
WORKLOAD_REGISTRY: Dict[str, Type[Workload]] = {}


def register_workload(cls: Type[Workload]) -> Type[Workload]:
    """Class decorator adding a workload to the registry."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} has no name")
    if cls.name in WORKLOAD_REGISTRY:
        raise ValueError(f"duplicate workload {cls.name!r}")
    WORKLOAD_REGISTRY[cls.name] = cls
    return cls


def make_workload(name: str, **params) -> Workload:
    """Instantiate a registered workload by name."""
    try:
        cls = WORKLOAD_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; known: {sorted(WORKLOAD_REGISTRY)}"
        ) from None
    return cls(**params)


# -- trace memoization -------------------------------------------------------
#
# Trace generation is deterministic: (workload name, its params, every
# GenContext field) fully determines the op lists, and nothing mutates
# a built trace afterwards (ops are frozen dataclasses; SMs wrap each
# warp's list in a fresh iterator).  So `compare` over N schemes — or a
# parity test running event and functional back-to-back — can
# materialize each trace once and share it.

#: Maximum memoized traces per process.  Traces are the largest
#: allocation in a run; a small LRU covers the common loops (same
#: workload across schemes / fidelities) without hoarding memory.
TRACE_CACHE_CAPACITY = 16

_trace_cache: "OrderedDict[tuple, List[List[List[WarpOp]]]]" = OrderedDict()
_trace_hits = 0
_trace_misses = 0


def _trace_key(workload: Workload, ctx: GenContext) -> tuple:
    return (workload.name,
            tuple(sorted(workload.params.items())),
            tuple(sorted(asdict(ctx).items())))


def materialize(workload: Workload,
                ctx: GenContext) -> List[List[List[WarpOp]]]:
    """Memoized :meth:`Workload.build` (``[sm][warp] -> ops``).

    Callers must treat the returned traces as immutable — they are
    shared across runs in this process.
    """
    global _trace_hits, _trace_misses
    try:
        key = _trace_key(workload, ctx)
    except TypeError:  # unhashable params: build uncached
        _trace_misses += 1
        return workload.build(ctx)
    cached = _trace_cache.get(key)
    if cached is not None:
        _trace_cache.move_to_end(key)
        _trace_hits += 1
        return cached
    _trace_misses += 1
    traces = workload.build(ctx)
    _trace_cache[key] = traces
    while len(_trace_cache) > TRACE_CACHE_CAPACITY:
        _trace_cache.popitem(last=False)
    return traces


def trace_cache_stats() -> Dict[str, int]:
    """Hit/miss/occupancy counters for ``cache stats`` debug output."""
    return {"entries": len(_trace_cache), "hits": _trace_hits,
            "misses": _trace_misses, "capacity": TRACE_CACHE_CAPACITY}


def trace_cache_clear() -> None:
    """Empty the trace memo and reset its hit/miss counters (tests)."""
    global _trace_hits, _trace_misses
    _trace_cache.clear()
    _trace_hits = 0
    _trace_misses = 0


def array_layout(sizes_bytes: List[int], align: int = 4096,
                 base: int = HEAP_BASE) -> List[int]:
    """Lay out arrays back-to-back with alignment; returns base addresses."""
    bases = []
    addr = base
    for size in sizes_bytes:
        addr = (addr + align - 1) // align * align
        bases.append(addr)
        addr += size
    return bases
