"""Scientific-kernel workloads beyond the core suite.

These three archetypes fill gaps the core fourteen leave open:

* :class:`Fft` — butterfly passes whose stride *doubles* each stage,
  sweeping from perfectly coalesced to line-strided within one kernel;
* :class:`NBody` — all-pairs interactions: a broadcast-heavy read
  pattern where every warp re-reads the same body array (extreme L2
  temporal reuse, negligible writes);
* :class:`KMeans` — assignment step: streaming point reads, hot
  centroid re-reads, scattered per-cluster accumulator updates (a
  mixed-intensity RMW pattern between histogram and gemm).

They are registered but not part of the default 14-workload evaluation
suite (``WORKLOADS``); use them by name with ``make_workload``.
"""

from __future__ import annotations

from typing import List

from repro.gpu.trace import WarpOp
from repro.workloads.base import GenContext, Workload, array_layout, register_workload


@register_workload
class Fft(Workload):
    """Radix-2 butterfly passes over a complex array.

    Stage *s* pairs elements ``stride = 2^s`` apart: early stages are
    fully coalesced, late stages touch two lines per warp and then two
    sectors per granule — a built-in divergence sweep.
    """

    name = "fft"
    category = "scientific"

    def warp_trace(self, sm_id: int, warp_id: int, ctx: GenContext) -> List[WarpOp]:
        n = ctx.scaled(self.params.get("elements", 1 << 20), minimum=1 << 12)
        n = 1 << (n.bit_length() - 1)  # round down to a power of two
        stages = min(self.params.get("stages", 8), n.bit_length() - 6)
        butterflies = ctx.scaled(self.params.get("butterflies_per_warp", 40),
                                 minimum=4)
        elem = 2 * ctx.elem_bytes  # complex: re + im
        (data,) = array_layout([n * elem])
        gw = self.global_warp_id(sm_id, warp_id, ctx)
        ops: List[WarpOp] = []
        for stage in range(stages):
            stride = 1 << stage
            for b in range(butterflies // stages + 1):
                # Lanes take consecutive butterflies of this stage.
                base_idx = (gw * ctx.lanes + b * ctx.total_warps * ctx.lanes)
                tops = []
                bottoms = []
                for lane in range(ctx.lanes):
                    i = base_idx + lane
                    group = (i // stride) * (2 * stride)
                    top = (group + i % stride) % (n - stride)
                    tops.append(top)
                    bottoms.append(top + stride)
                ops.append(self.gathered(data, tops, elem))
                ops.append(self.gathered(data, bottoms, elem))
                ops.append(self.compute(10))  # twiddle multiply
                ops.append(self.gathered(data, tops, elem, is_store=True))
                ops.append(self.gathered(data, bottoms, elem, is_store=True))
        return ops


@register_workload
class NBody(Workload):
    """All-pairs N-body force step: every warp streams the whole body
    array per outer element — broadcast reuse that should live
    entirely in the L2, making protection nearly free."""

    name = "nbody"
    category = "scientific"

    def warp_trace(self, sm_id: int, warp_id: int, ctx: GenContext) -> List[WarpOp]:
        bodies = ctx.scaled(self.params.get("bodies", 16384), minimum=1024)
        tiles = ctx.scaled(self.params.get("tiles_per_warp", 30), minimum=4)
        body_bytes = self.params.get("body_bytes", 16)  # x,y,z,m
        positions, forces = array_layout([bodies * body_bytes,
                                          bodies * body_bytes])
        gw = self.global_warp_id(sm_id, warp_id, ctx)
        stride = body_bytes // ctx.elem_bytes
        ops: List[WarpOp] = []
        for tile in range(tiles):
            # Every warp walks the same tile sequence: broadcast reuse.
            first_body = (tile * ctx.lanes) % (bodies - ctx.lanes)
            ops.append(self.gathered(
                positions,
                [(first_body + lane) * stride for lane in range(ctx.lanes)],
                ctx.elem_bytes))
            ops.append(self.compute(40))  # the pairwise interactions
        my_body = (gw * ctx.lanes) % (bodies - ctx.lanes)
        ops.append(self.gathered(
            forces, [(my_body + lane) * stride for lane in range(ctx.lanes)],
            ctx.elem_bytes, is_store=True))
        return ops


@register_workload
class KMeans(Workload):
    """k-means assignment: stream points, re-read the (hot) centroid
    table per point, scatter accumulator updates per assigned cluster."""

    name = "kmeans"
    category = "scientific"

    def warp_trace(self, sm_id: int, warp_id: int, ctx: GenContext) -> List[WarpOp]:
        points = ctx.scaled(self.params.get("points", 1_000_000))
        clusters = self.params.get("clusters", 64)
        dims = self.params.get("dims", 4)
        iters = ctx.scaled(self.params.get("points_per_warp", 40), minimum=4)
        data, centroids, accum = array_layout([
            points * dims * ctx.elem_bytes,
            clusters * dims * ctx.elem_bytes,
            clusters * dims * ctx.elem_bytes,
        ])
        rng = ctx.warp_rng(self.name, sm_id, warp_id)
        gw = self.global_warp_id(sm_id, warp_id, ctx)
        stride = ctx.total_warps * ctx.lanes
        ops: List[WarpOp] = []
        for it in range(iters):
            first = (gw * ctx.lanes + it * stride) * dims \
                % (points * dims - ctx.lanes)
            ops.append(self.coalesced(data, first, ctx.lanes, ctx.elem_bytes))
            # Distance to every centroid: the table is hot and tiny.
            for c in range(0, clusters, clusters // 4):
                ops.append(self.coalesced(
                    centroids, c * dims,
                    min(ctx.lanes, (clusters - c) * dims), ctx.elem_bytes))
                ops.append(self.compute(dims * 3))
            # Scatter: each lane updates its winning cluster's accumulator.
            winners = [rng.randrange(clusters) * dims
                       for _ in range(ctx.lanes)]
            ops.append(self.gathered(accum, winners, ctx.elem_bytes))
            ops.append(self.gathered(accum, winners, ctx.elem_bytes,
                                     is_store=True))
        return ops
