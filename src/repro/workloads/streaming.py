"""Streaming workloads: coalesced, low-reuse, bandwidth-bound.

These are the kernels "ECC mode" barely hurts for reads (full lines are
touched anyway) but whose write streams expose the metadata
read-modify-write cost of inline protection.
"""

from __future__ import annotations

from typing import List

from repro.gpu.trace import WarpOp
from repro.workloads.base import GenContext, Workload, array_layout, register_workload


@register_workload
class VecAdd(Workload):
    """``C[i] = A[i] + B[i]`` — the canonical streaming kernel.

    Two coalesced loads and one coalesced store per element chunk, a
    footprint far beyond L2, and no reuse at all.
    """

    name = "vecadd"
    category = "streaming"

    def warp_trace(self, sm_id: int, warp_id: int, ctx: GenContext) -> List[WarpOp]:
        elems = ctx.scaled(self.params.get("elements", 3_000_000))
        iters = ctx.scaled(self.params.get("iters_per_warp", 360), minimum=8)
        a, b, c = array_layout([elems * ctx.elem_bytes] * 3)
        gw = self.global_warp_id(sm_id, warp_id, ctx)
        stride = ctx.total_warps * ctx.lanes
        ops: List[WarpOp] = []
        for it in range(iters):
            first = (gw * ctx.lanes + it * stride) % (elems - ctx.lanes)
            ops.append(self.coalesced(a, first, ctx.lanes, ctx.elem_bytes))
            ops.append(self.coalesced(b, first, ctx.lanes, ctx.elem_bytes))
            ops.append(self.compute(4))
            ops.append(self.coalesced(c, first, ctx.lanes, ctx.elem_bytes,
                                      is_store=True))
        return ops


@register_workload
class Saxpy(Workload):
    """``Y[i] = a*X[i] + Y[i]`` — streaming with a read-modify-write
    array, doubling the store-side protection pressure of vecadd."""

    name = "saxpy"
    category = "streaming"

    def warp_trace(self, sm_id: int, warp_id: int, ctx: GenContext) -> List[WarpOp]:
        elems = ctx.scaled(self.params.get("elements", 3_000_000))
        iters = ctx.scaled(self.params.get("iters_per_warp", 360), minimum=8)
        x, y = array_layout([elems * ctx.elem_bytes] * 2)
        gw = self.global_warp_id(sm_id, warp_id, ctx)
        stride = ctx.total_warps * ctx.lanes
        ops: List[WarpOp] = []
        for it in range(iters):
            first = (gw * ctx.lanes + it * stride) % (elems - ctx.lanes)
            ops.append(self.coalesced(x, first, ctx.lanes, ctx.elem_bytes))
            ops.append(self.coalesced(y, first, ctx.lanes, ctx.elem_bytes))
            ops.append(self.compute(4))
            ops.append(self.coalesced(y, first, ctx.lanes, ctx.elem_bytes,
                                      is_store=True))
        return ops


@register_workload
class Scan(Workload):
    """Multi-pass prefix sum: streaming read+write passes over the same
    array, with pass-to-pass reuse that only a large L2 can catch."""

    name = "scan"
    category = "streaming"

    def warp_trace(self, sm_id: int, warp_id: int, ctx: GenContext) -> List[WarpOp]:
        elems = ctx.scaled(self.params.get("elements", 700_000))
        passes = self.params.get("passes", 3)
        iters = ctx.scaled(self.params.get("iters_per_warp", 150), minimum=4)
        (data,) = array_layout([elems * ctx.elem_bytes])
        gw = self.global_warp_id(sm_id, warp_id, ctx)
        stride = ctx.total_warps * ctx.lanes
        ops: List[WarpOp] = []
        for p in range(passes):
            for it in range(iters):
                first = (gw * ctx.lanes + it * stride) % (elems - ctx.lanes)
                ops.append(self.coalesced(data, first, ctx.lanes, ctx.elem_bytes))
                ops.append(self.compute(6))
                ops.append(self.coalesced(data, first, ctx.lanes,
                                          ctx.elem_bytes, is_store=True))
        return ops


@register_workload
class Reduction(Workload):
    """Tree reduction: a streaming read phase, then log-depth passes
    over a shrinking partial-sum array that becomes cache-resident."""

    name = "reduction"
    category = "streaming"

    def warp_trace(self, sm_id: int, warp_id: int, ctx: GenContext) -> List[WarpOp]:
        elems = ctx.scaled(self.params.get("elements", 2_000_000))
        iters = ctx.scaled(self.params.get("iters_per_warp", 280), minimum=8)
        data, partial = array_layout(
            [elems * ctx.elem_bytes, ctx.total_warps * ctx.lanes * ctx.elem_bytes])
        gw = self.global_warp_id(sm_id, warp_id, ctx)
        stride = ctx.total_warps * ctx.lanes
        ops: List[WarpOp] = []
        for it in range(iters):
            first = (gw * ctx.lanes + it * stride) % (elems - ctx.lanes)
            ops.append(self.coalesced(data, first, ctx.lanes, ctx.elem_bytes))
            ops.append(self.compute(3))
        # Partial-sum tree: repeated read/write over a small shared array.
        size = ctx.total_warps * ctx.lanes
        while size > ctx.lanes:
            first = (gw * ctx.lanes) % max(ctx.lanes, size - ctx.lanes)
            ops.append(self.coalesced(partial, first, ctx.lanes, ctx.elem_bytes))
            ops.append(self.compute(3))
            ops.append(self.coalesced(partial, first // 2, ctx.lanes,
                                      ctx.elem_bytes, is_store=True))
            size //= 2
        return ops
