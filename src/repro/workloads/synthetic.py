"""Parametric synthetic workloads for controlled sweeps.

:class:`DivergenceSweep` dials the exact quantity experiment F8 plots
against: *sectors touched per protection granule*.  At density 1.0 it
behaves like a streaming kernel (every sector of every granule is
demanded); at 1/granule-sectors it is a pure pointer-chase (one sector
per granule) — the axis along which full-granule fetch decays from free
to 4-16x overfetch.
"""

from __future__ import annotations

from typing import List

from repro.gpu.trace import WarpOp
from repro.workloads.base import GenContext, Workload, array_layout, register_workload


@register_workload
class DivergenceSweep(Workload):
    """Loads with a controlled sectors-per-granule density.

    Parameters
    ----------
    density:
        Fraction of each granule's sectors a warp touches (0 < d <= 1).
    granule_bytes:
        The granule size the density is defined against (must match the
        scheme under test for the sweep to mean what it says).
    """

    name = "divergence"
    category = "synthetic"

    def warp_trace(self, sm_id: int, warp_id: int, ctx: GenContext) -> List[WarpOp]:
        density = float(self.params.get("density", 1.0))
        if not 0.0 < density <= 1.0:
            raise ValueError("density must be in (0, 1]")
        granule_bytes = int(self.params.get("granule_bytes", 128))
        footprint = ctx.scaled(self.params.get("footprint_bytes", 48 << 20),
                               minimum=1 << 20)
        iters = ctx.scaled(self.params.get("iters_per_warp", 60), minimum=8)
        (heap,) = array_layout([footprint])
        rng = ctx.warp_rng(self.name, sm_id, warp_id)
        sectors_per_granule = max(1, granule_bytes // ctx.sector_bytes)
        touched = max(1, round(density * sectors_per_granule))
        n_granules = footprint // granule_bytes
        ops: List[WarpOp] = []
        for _ in range(iters):
            addrs = []
            while len(addrs) < ctx.lanes:
                granule = rng.randrange(n_granules)
                base = granule * granule_bytes
                sectors = rng.sample(range(sectors_per_granule), touched)
                for s in sectors:
                    if len(addrs) < ctx.lanes:
                        addrs.append(heap + base + s * ctx.sector_bytes)
            ops.append(_raw_op(tuple(addrs)))
            ops.append(self.compute(4))
        return ops


@register_workload
class UniformRandom(Workload):
    """Uniformly random single-sector loads over a parametric footprint
    — the simplest cache-unfriendly reference stream."""

    name = "uniform-random"
    category = "synthetic"

    def warp_trace(self, sm_id: int, warp_id: int, ctx: GenContext) -> List[WarpOp]:
        footprint = ctx.scaled(self.params.get("footprint_bytes", 32 << 20),
                               minimum=1 << 20)
        iters = ctx.scaled(self.params.get("iters_per_warp", 50), minimum=8)
        write_fraction = float(self.params.get("write_fraction", 0.0))
        (heap,) = array_layout([footprint])
        rng = ctx.warp_rng(self.name, sm_id, warp_id)
        n_sectors = footprint // ctx.sector_bytes
        ops: List[WarpOp] = []
        for _ in range(iters):
            addrs = tuple(heap + rng.randrange(n_sectors) * ctx.sector_bytes
                          for _ in range(ctx.lanes))
            ops.append(_raw_op(addrs, is_store=rng.random() < write_fraction))
            ops.append(self.compute(4))
        return ops


def _raw_op(addresses, is_store: bool = False):
    from repro.gpu.trace import MemoryOp

    return MemoryOp(addresses, is_store=is_store)
