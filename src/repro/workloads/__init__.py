"""Workload (trace) generators.

The reproduction has no access to proprietary GPU traces, so each
generator synthesizes the *memory-access structure* of a canonical GPU
kernel archetype: footprint, spatial density per protection granule,
temporal reuse, read/write mix, and coalescing behaviour — the
properties protection overheads are a function of.

Fourteen named workloads (``WORKLOADS``) cover the archetypes a MICRO
evaluation would draw from Rodinia/Parboil-class suites, plus the
parametric :class:`~repro.workloads.synthetic.DivergenceSweep` used by
experiment F8.
"""

from repro.workloads.base import GenContext, Workload, WORKLOAD_REGISTRY, make_workload
from repro.workloads.blocked import Conv2d, GemmTile, Stencil2d, Stencil3d, Transpose
from repro.workloads.irregular import Bfs, Histogram, PointerChase, RadixSortPass, SpmvCsr
from repro.workloads.mixes import ComputeScatterMix, ConcurrentMix, StreamGatherMix, make_mix
from repro.workloads.scientific import Fft, KMeans, NBody
from repro.workloads.streaming import Reduction, Saxpy, Scan, VecAdd
from repro.workloads.synthetic import DivergenceSweep, UniformRandom

#: The evaluation suite, in presentation order (streaming -> irregular).
WORKLOADS = (
    "vecadd", "saxpy", "scan", "reduction",
    "gemm", "conv2d", "stencil2d", "stencil3d", "transpose",
    "histogram", "radix", "spmv", "bfs", "pchase",
)

#: Four-workload subset used by the sensitivity sweeps (F4-F6, F9).
REPRESENTATIVE_WORKLOADS = ("vecadd", "gemm", "spmv", "pchase")

#: Registered extras outside the default evaluation suite.
EXTRA_WORKLOADS = ("fft", "nbody", "kmeans", "atomic-hist",
                   "mix-stream-gather", "mix-compute-scatter",
                   "divergence", "uniform-random")

__all__ = [
    "Workload",
    "GenContext",
    "WORKLOAD_REGISTRY",
    "WORKLOADS",
    "REPRESENTATIVE_WORKLOADS",
    "make_workload",
    "VecAdd", "Saxpy", "Scan", "Reduction",
    "GemmTile", "Conv2d", "Stencil2d", "Stencil3d", "Transpose",
    "Histogram", "RadixSortPass", "SpmvCsr", "Bfs", "PointerChase",
    "Fft", "NBody", "KMeans",
    "ConcurrentMix", "StreamGatherMix", "ComputeScatterMix", "make_mix",
    "DivergenceSweep", "UniformRandom",
    "EXTRA_WORKLOADS",
]
