"""Concurrent-kernel mixes.

GPUs co-schedule kernels; a streaming kernel and a divergent kernel
sharing the L2 is the stress case for metadata-in-L2 designs (the
stream evicts the divergent kernel's metadata and directory-warming
granules).  :class:`ConcurrentMix` splits the machine's warps between
two member workloads so both run simultaneously on one system.

Registered as ``mix:<a>+<b>`` is not a thing — instantiate directly or
use :func:`make_mix`; the common pairs are pre-registered as
``mix-stream-gather`` and ``mix-compute-scatter``.
"""

from __future__ import annotations

from typing import List

from repro.gpu.trace import WarpOp
from repro.workloads.base import GenContext, Workload, register_workload
from repro.workloads.irregular import Histogram, SpmvCsr
from repro.workloads.blocked import GemmTile
from repro.workloads.streaming import VecAdd


class ConcurrentMix(Workload):
    """Two workloads sharing the machine, split by warp parity.

    Even global warp ids run ``first``, odd run ``second``.  Each
    member sees a GenContext with half the warps so its footprint and
    per-warp work match a half-machine launch of itself.
    """

    name = "mix"
    category = "mix"

    def __init__(self, first: Workload = None, second: Workload = None,
                 **params):
        super().__init__(**params)
        self.first = first if first is not None else VecAdd()
        self.second = second if second is not None else SpmvCsr()
        self.category = f"mix({self.first.name}+{self.second.name})"

    def _member_ctx(self, ctx: GenContext) -> GenContext:
        half_warps = max(1, ctx.warps_per_sm // 2)
        return GenContext(
            num_sms=ctx.num_sms, warps_per_sm=half_warps,
            lanes=ctx.lanes, elem_bytes=ctx.elem_bytes, seed=ctx.seed,
            scale=ctx.scale, line_bytes=ctx.line_bytes,
            sector_bytes=ctx.sector_bytes)

    def warp_trace(self, sm_id: int, warp_id: int, ctx: GenContext) -> List[WarpOp]:
        member_ctx = self._member_ctx(ctx)
        member_warp = warp_id // 2
        member_warp = min(member_warp, member_ctx.warps_per_sm - 1)
        if warp_id % 2 == 0:
            return self.first.warp_trace(sm_id, member_warp, member_ctx)
        return self.second.warp_trace(sm_id, member_warp, member_ctx)


@register_workload
class StreamGatherMix(ConcurrentMix):
    """Streaming vecadd co-running with divergent spmv — the stream
    pressures exactly the L2 capacity the gather's metadata and
    directory-backing residency need."""

    name = "mix-stream-gather"

    def __init__(self, **params):
        super().__init__(first=VecAdd(), second=SpmvCsr(), **params)


@register_workload
class ComputeScatterMix(ConcurrentMix):
    """Compute-heavy gemm co-running with histogram's random RMW —
    light bandwidth from one side, hot scatter from the other."""

    name = "mix-compute-scatter"

    def __init__(self, **params):
        super().__init__(first=GemmTile(), second=Histogram(), **params)


def make_mix(first: Workload, second: Workload) -> ConcurrentMix:
    """Build an ad-hoc concurrent mix of two workload instances."""
    return ConcurrentMix(first=first, second=second)
