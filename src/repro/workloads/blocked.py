"""Blocked / tiled workloads: structured reuse, mostly coalesced.

These kernels hit well in L2, so their protection cost is dominated by
the *miss path amplification* on the cold tile fetches plus metadata
pressure competing for cache capacity — the regime where CacheCraft's
in-L2 metadata must prove it does not hurt.
"""

from __future__ import annotations

from typing import List

from repro.gpu.trace import WarpOp
from repro.workloads.base import GenContext, Workload, array_layout, register_workload


@register_workload
class GemmTile(Workload):
    """Tiled dense matrix multiply.

    Each warp computes a C tile: it streams A-row tiles while the
    shared B tiles are re-read by many warps (high L2 temporal reuse).
    """

    name = "gemm"
    category = "blocked"

    def warp_trace(self, sm_id: int, warp_id: int, ctx: GenContext) -> List[WarpOp]:
        n = ctx.scaled_dim(self.params.get("matrix_dim", 1024), minimum=128)
        tile = self.params.get("tile", 32)
        k_tiles = max(2, n // tile // 2)
        a, b, c = array_layout([n * n * ctx.elem_bytes] * 3)
        gw = self.global_warp_id(sm_id, warp_id, ctx)
        tiles_per_row = max(1, n // tile)
        tile_row = (gw // tiles_per_row) % tiles_per_row
        tile_col = gw % tiles_per_row
        ops: List[WarpOp] = []
        for kt in range(k_tiles):
            # A tile rows: warp-private, streaming.
            for r in range(0, tile, 8):
                row = (tile_row * tile + r) % n
                first = row * n + kt * tile
                ops.append(self.coalesced(a, first % (n * n - ctx.lanes),
                                          ctx.lanes, ctx.elem_bytes))
            # B tile rows: shared across all warps computing this column.
            for r in range(0, tile, 8):
                row = (kt * tile + r) % n
                first = row * n + tile_col * tile
                ops.append(self.coalesced(b, first % (n * n - ctx.lanes),
                                          ctx.lanes, ctx.elem_bytes))
            # The MACs on a 32x32x32 tile product: ~1024 FMA issues per
            # warp, partly overlapped; model ~300 cycles of compute.
            ops.append(self.compute(300))
        # C tile writeout.
        for r in range(0, tile, 8):
            row = (tile_row * tile + r) % n
            first = row * n + tile_col * tile
            ops.append(self.coalesced(c, first % (n * n - ctx.lanes),
                                      ctx.lanes, ctx.elem_bytes, is_store=True))
        return ops


@register_workload
class Conv2d(Workload):
    """2D convolution: sliding-window input reuse, L1-resident weights,
    coalesced output stores."""

    name = "conv2d"
    category = "blocked"

    def warp_trace(self, sm_id: int, warp_id: int, ctx: GenContext) -> List[WarpOp]:
        width = ctx.scaled_dim(self.params.get("width", 1024), minimum=256)
        height = ctx.scaled_dim(self.params.get("height", 512), minimum=64)
        ksize = self.params.get("kernel", 3)
        rows_per_warp = ctx.scaled(self.params.get("rows_per_warp", 10), minimum=2)
        img, weights, out = array_layout([
            width * height * ctx.elem_bytes,
            ksize * ksize * ctx.elem_bytes,
            width * height * ctx.elem_bytes,
        ])
        gw = self.global_warp_id(sm_id, warp_id, ctx)
        ops: List[WarpOp] = []
        for r in range(rows_per_warp):
            row = (gw * rows_per_warp + r) % (height - ksize)
            for col0 in range(0, width - ctx.lanes, width // 4):
                for ky in range(ksize):
                    first = (row + ky) * width + col0
                    ops.append(self.coalesced(img, first, ctx.lanes,
                                              ctx.elem_bytes))
                ops.append(self.coalesced(weights, 0,
                                          min(ctx.lanes, ksize * ksize),
                                          ctx.elem_bytes))
                ops.append(self.compute(ksize * ksize * 2))
                ops.append(self.coalesced(out, row * width + col0, ctx.lanes,
                                          ctx.elem_bytes, is_store=True))
        return ops


@register_workload
class Stencil2d(Workload):
    """5-point 2D stencil: each output row re-reads three input rows
    that neighbouring warps also read — strong L2 spatial reuse."""

    name = "stencil2d"
    category = "blocked"

    def warp_trace(self, sm_id: int, warp_id: int, ctx: GenContext) -> List[WarpOp]:
        width = ctx.scaled_dim(self.params.get("width", 2048), minimum=256)
        height = ctx.scaled_dim(self.params.get("height", 512), minimum=64)
        rows_per_warp = ctx.scaled(self.params.get("rows_per_warp", 12), minimum=2)
        grid_in, grid_out = array_layout([width * height * ctx.elem_bytes] * 2)
        gw = self.global_warp_id(sm_id, warp_id, ctx)
        ops: List[WarpOp] = []
        for r in range(rows_per_warp):
            row = (gw + r * ctx.total_warps) % (height - 2) + 1
            for col0 in range(0, width - ctx.lanes, width // 3):
                for dy in (-1, 0, 1):
                    first = (row + dy) * width + col0
                    ops.append(self.coalesced(grid_in, first, ctx.lanes,
                                              ctx.elem_bytes))
                ops.append(self.compute(8))
                ops.append(self.coalesced(grid_out, row * width + col0,
                                          ctx.lanes, ctx.elem_bytes,
                                          is_store=True))
        return ops


@register_workload
class Stencil3d(Workload):
    """7-point 3D stencil: plane-sized reuse distance that overflows
    the L2 — reuse exists but capacity misses dominate."""

    name = "stencil3d"
    category = "blocked"

    def warp_trace(self, sm_id: int, warp_id: int, ctx: GenContext) -> List[WarpOp]:
        dim = ctx.scaled_dim(self.params.get("dim", 200), minimum=48,
                             dims=3)
        points_per_warp = ctx.scaled(self.params.get("points_per_warp", 24),
                                     minimum=4)
        plane = dim * dim
        vol_in, vol_out = array_layout([dim * plane * ctx.elem_bytes] * 2)
        gw = self.global_warp_id(sm_id, warp_id, ctx)
        ops: List[WarpOp] = []
        for p in range(points_per_warp):
            z = (gw + p * ctx.total_warps) % (dim - 2) + 1
            y = (gw * 7 + p * 3) % (dim - 2) + 1
            x0 = (p * ctx.lanes) % max(1, dim - ctx.lanes)
            center = z * plane + y * dim + x0
            for off in (center - plane, center - dim, center,
                        center + dim, center + plane):
                ops.append(self.coalesced(vol_in, max(0, off), ctx.lanes,
                                          ctx.elem_bytes))
            ops.append(self.compute(10))
            ops.append(self.coalesced(vol_out, center, ctx.lanes,
                                      ctx.elem_bytes, is_store=True))
        return ops


@register_workload
class Transpose(Workload):
    """Matrix transpose: coalesced reads, line-strided writes — every
    store touches one sector of 32 different lines, the classic
    write-divergence stressor for granule-code writebacks."""

    name = "transpose"
    category = "blocked"

    def warp_trace(self, sm_id: int, warp_id: int, ctx: GenContext) -> List[WarpOp]:
        n = ctx.scaled_dim(self.params.get("matrix_dim", 1400), minimum=256)
        rows_per_warp = ctx.scaled(self.params.get("rows_per_warp", 8), minimum=2)
        src, dst = array_layout([n * n * ctx.elem_bytes] * 2)
        gw = self.global_warp_id(sm_id, warp_id, ctx)
        ops: List[WarpOp] = []
        for r in range(rows_per_warp):
            row = (gw + r * ctx.total_warps) % n
            for col0 in range(0, n - ctx.lanes, n // 2):
                ops.append(self.coalesced(src, row * n + col0, ctx.lanes,
                                          ctx.elem_bytes))
                ops.append(self.compute(2))
                # dst[col][row]: lane l writes element (col0+l)*n + row.
                ops.append(self.gathered(
                    dst, [(col0 + lane) * n + row for lane in range(ctx.lanes)],
                    ctx.elem_bytes, is_store=True))
        return ops
