"""Irregular workloads: divergent, low-spatial-density access.

These are the workloads the paper's title is about: when a warp's 32
lanes touch 32 different lines and each line miss touches one sector of
a multi-sector protection granule, a full-granule-fetch scheme fetches
4-16x the demanded data — and CacheCraft's reconstruction is supposed
to claw most of that back.
"""

from __future__ import annotations

from typing import List

from repro.gpu.trace import WarpOp
from repro.workloads.base import GenContext, Workload, array_layout, register_workload


@register_workload
class SpmvCsr(Workload):
    """Sparse matrix-vector multiply (CSR): streaming row pointers and
    values, gathered ``x[col[j]]`` loads with power-law column reuse."""

    name = "spmv"
    category = "irregular"

    def warp_trace(self, sm_id: int, warp_id: int, ctx: GenContext) -> List[WarpOp]:
        n_cols = ctx.scaled(self.params.get("cols", 1_500_000))
        rows_per_warp = ctx.scaled(self.params.get("rows_per_warp", 28), minimum=4)
        nnz_per_row = self.params.get("nnz_per_row", 2)  # in units of warp-wide ops
        skew = self.params.get("skew", 2.0)
        vals, cols, x, y = array_layout([
            n_cols * 4 * ctx.elem_bytes, n_cols * 4 * ctx.elem_bytes,
            n_cols * ctx.elem_bytes, n_cols * ctx.elem_bytes,
        ])
        rng = self.warp_rng(sm_id, warp_id, ctx)
        gw = self.global_warp_id(sm_id, warp_id, ctx)
        ops: List[WarpOp] = []
        nnz_base = gw * rows_per_warp * nnz_per_row * ctx.lanes
        for r in range(rows_per_warp):
            for j in range(nnz_per_row):
                first = (nnz_base + (r * nnz_per_row + j) * ctx.lanes) \
                    % (n_cols * 4 - ctx.lanes)
                ops.append(self.coalesced(vals, first, ctx.lanes, ctx.elem_bytes))
                ops.append(self.coalesced(cols, first, ctx.lanes, ctx.elem_bytes))
                # The gather: power-law column indices (hubs get reused).
                indices = [self._powerlaw(rng, n_cols, skew)
                           for _ in range(ctx.lanes)]
                ops.append(self.gathered(x, indices, ctx.elem_bytes))
                ops.append(self.compute(4))
            row = (gw * rows_per_warp + r) % (n_cols - ctx.lanes)
            ops.append(self.coalesced(y, row, ctx.lanes, ctx.elem_bytes,
                                      is_store=True))
        return ops

    def warp_rng(self, sm_id, warp_id, ctx):
        return ctx.warp_rng(self.name, sm_id, warp_id)

    @staticmethod
    def _powerlaw(rng, n: int, skew: float) -> int:
        """Zipf-ish index in [0, n): small indices much more likely."""
        u = rng.random()
        return min(n - 1, int(n * (u ** skew)))


@register_workload
class Bfs(Workload):
    """Breadth-first search step: coalesced frontier reads, fully
    divergent neighbour gathers, scattered visited-bitmap updates."""

    name = "bfs"
    category = "irregular"

    def warp_trace(self, sm_id: int, warp_id: int, ctx: GenContext) -> List[WarpOp]:
        n_nodes = ctx.scaled(self.params.get("nodes", 2_000_000))
        frontier_per_warp = ctx.scaled(self.params.get("frontier_per_warp", 22),
                                       minimum=4)
        frontier, adj, visited, next_frontier = array_layout([
            n_nodes * ctx.elem_bytes, n_nodes * 4 * ctx.elem_bytes,
            n_nodes, n_nodes * ctx.elem_bytes,
        ])
        rng = ctx.warp_rng(self.name, sm_id, warp_id)
        gw = self.global_warp_id(sm_id, warp_id, ctx)
        ops: List[WarpOp] = []
        for f in range(frontier_per_warp):
            first = (gw * frontier_per_warp + f) * ctx.lanes % (n_nodes - ctx.lanes)
            ops.append(self.coalesced(frontier, first, ctx.lanes, ctx.elem_bytes))
            # Neighbour gather: uniformly random nodes (graph has no locality).
            neighbours = [rng.randrange(n_nodes) for _ in range(ctx.lanes)]
            ops.append(self.gathered(adj, [4 * v for v in neighbours],
                                     ctx.elem_bytes))
            ops.append(self.compute(3))
            # Visited bitmap probe + update (byte-granularity model).
            ops.append(self.gathered(visited, neighbours, 1))
            ops.append(self.gathered(visited, neighbours, 1, is_store=True))
            ops.append(self.coalesced(next_frontier, first, ctx.lanes,
                                      ctx.elem_bytes, is_store=True))
        return ops


@register_workload
class Histogram(Workload):
    """Histogramming: streaming input, read-modify-write scatter into a
    bin table sized to sit in L2 (hot, randomly addressed)."""

    name = "histogram"
    category = "irregular"

    def warp_trace(self, sm_id: int, warp_id: int, ctx: GenContext) -> List[WarpOp]:
        n_input = ctx.scaled(self.params.get("input_elems", 2_000_000))
        n_bins = self.params.get("bins", 65536)
        iters = ctx.scaled(self.params.get("iters_per_warp", 120), minimum=4)
        data, bins = array_layout([n_input * ctx.elem_bytes,
                                   n_bins * ctx.elem_bytes])
        rng = ctx.warp_rng(self.name, sm_id, warp_id)
        gw = self.global_warp_id(sm_id, warp_id, ctx)
        stride = ctx.total_warps * ctx.lanes
        ops: List[WarpOp] = []
        for it in range(iters):
            first = (gw * ctx.lanes + it * stride) % (n_input - ctx.lanes)
            ops.append(self.coalesced(data, first, ctx.lanes, ctx.elem_bytes))
            ops.append(self.compute(2))
            indices = [rng.randrange(n_bins) for _ in range(ctx.lanes)]
            ops.append(self.gathered(bins, indices, ctx.elem_bytes))
            ops.append(self.gathered(bins, indices, ctx.elem_bytes,
                                     is_store=True))
        return ops


@register_workload
class AtomicHistogram(Workload):
    """Histogramming with hardware atomics.

    The same access structure as :class:`Histogram`, but the bin
    updates are single ``atomicAdd`` operations executed at the L2
    instead of software load+store pairs — half the warp instructions
    and no L1 involvement for the scatter.  Registered as an extra (not
    part of the default evaluation suite).
    """

    name = "atomic-hist"
    category = "irregular"

    def warp_trace(self, sm_id: int, warp_id: int, ctx: GenContext) -> List[WarpOp]:
        n_input = ctx.scaled(self.params.get("input_elems", 2_000_000))
        n_bins = self.params.get("bins", 65536)
        iters = ctx.scaled(self.params.get("iters_per_warp", 120), minimum=4)
        data, bins = array_layout([n_input * ctx.elem_bytes,
                                   n_bins * ctx.elem_bytes])
        rng = ctx.warp_rng(self.name, sm_id, warp_id)
        gw = self.global_warp_id(sm_id, warp_id, ctx)
        stride = ctx.total_warps * ctx.lanes
        ops: List[WarpOp] = []
        for it in range(iters):
            first = (gw * ctx.lanes + it * stride) % (n_input - ctx.lanes)
            ops.append(self.coalesced(data, first, ctx.lanes, ctx.elem_bytes))
            ops.append(self.compute(2))
            indices = [rng.randrange(n_bins) for _ in range(ctx.lanes)]
            from repro.gpu.trace import MemoryOp
            ops.append(MemoryOp(
                tuple(bins + i * ctx.elem_bytes for i in indices),
                is_store=True, is_atomic=True))
        return ops


@register_workload
class PointerChase(Workload):
    """Per-lane linked-list traversal: every op is 32 uncorrelated
    single-sector loads and the warp cannot advance until they all
    land — the latency-bound, maximally divergent extreme."""

    name = "pchase"
    category = "irregular"

    def warp_trace(self, sm_id: int, warp_id: int, ctx: GenContext) -> List[WarpOp]:
        n_nodes = ctx.scaled(self.params.get("nodes", 1_000_000))
        hops = ctx.scaled(self.params.get("hops", 30), minimum=4)
        node_bytes = self.params.get("node_bytes", 64)
        (heap,) = array_layout([n_nodes * node_bytes])
        rng = ctx.warp_rng(self.name, sm_id, warp_id)
        cursors = [rng.randrange(n_nodes) for _ in range(ctx.lanes)]
        ops: List[WarpOp] = []
        for hop in range(hops):
            ops.append(self.gathered(heap, [c * (node_bytes // 4)
                                            for c in cursors], 4))
            ops.append(self.compute(2))
            cursors = [rng.randrange(n_nodes) for _ in cursors]
        return ops


@register_workload
class RadixSortPass(Workload):
    """One radix-sort scatter pass: streaming key reads, 256-bucket
    scattered writes with moderate per-bucket locality."""

    name = "radix"
    category = "irregular"

    def warp_trace(self, sm_id: int, warp_id: int, ctx: GenContext) -> List[WarpOp]:
        n_keys = ctx.scaled(self.params.get("keys", 2_000_000))
        iters = ctx.scaled(self.params.get("iters_per_warp", 100), minimum=4)
        buckets = self.params.get("buckets", 256)
        src, dst = array_layout([n_keys * ctx.elem_bytes] * 2)
        rng = ctx.warp_rng(self.name, sm_id, warp_id)
        gw = self.global_warp_id(sm_id, warp_id, ctx)
        stride = ctx.total_warps * ctx.lanes
        bucket_span = n_keys // buckets
        # Each bucket keeps a rolling append cursor per warp.
        cursors = {b: rng.randrange(max(1, bucket_span - ctx.lanes))
                   for b in range(buckets)}
        ops: List[WarpOp] = []
        for it in range(iters):
            first = (gw * ctx.lanes + it * stride) % (n_keys - ctx.lanes)
            ops.append(self.coalesced(src, first, ctx.lanes, ctx.elem_bytes))
            ops.append(self.compute(3))
            # Lanes scatter to a handful of buckets; within a bucket the
            # destination advances sequentially (real radix behaviour).
            lane_buckets = sorted(rng.randrange(buckets)
                                  for _ in range(ctx.lanes))
            indices = []
            for bucket in lane_buckets:
                base_idx = bucket * bucket_span + cursors[bucket]
                indices.append(min(n_keys - 1, base_idx))
                cursors[bucket] = (cursors[bucket] + 1) % max(
                    1, bucket_span - ctx.lanes)
            ops.append(self.gathered(dst, indices, ctx.elem_bytes,
                                     is_store=True))
        return ops
