"""Subprocess entry point for one campaign cell.

Reads a JSON *cell spec* from stdin, runs the described simulation,
and writes a single JSON result object to stdout.  Run as::

    python -m repro.resilience.worker < cell.json

The process boundary is the isolation mechanism: a crash, hang or
interpreter fault in one cell cannot take down the campaign runner.
Exit status 0 means the result object has ``"status": "ok"``; any
failure exits non-zero after (best-effort) printing a
``"status": "error"`` object.

Cell spec fields (all optional except ``workload``/``scheme``)::

    {"cell": "spmv/cachecraft", "workload": "spmv", "scheme": "cachecraft",
     "scale": 0.1, "seed": 42, "workload_params": {}, "gpu": {...},
     "protection": {...},
     "resilience": {"recovery": {...RecoveryPolicy fields...},
                    "fault_processes": [{"kind": "transient", ...}],
                    "inject_seed": 1, "inject_interval": 500},
     "max_events": 20000000, "max_wall_seconds": 120,
     "sabotage": null}

``sabotage`` is a test hook for exercising the runner's fault
handling: ``"hang"`` sleeps forever (runner timeout must kill it),
``"crash"`` exits hard with a non-zero status, and ``"livelock"``
schedules a zero-delay self-rescheduling event so the engine watchdog
fires.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Any, Dict

from repro.analysis.harness import bench_config, bench_gen_ctx
from repro.core.config import ResilienceConfig
from repro.core.results import RunResult
from repro.core.system import GpuSystem
from repro.resilience.faults import make_process
from repro.resilience.recovery import RecoveryPolicy
from repro.sim.engine import Watchdog
from repro.workloads import make_workload


def build_cell_config(spec: Dict[str, Any]):
    """Translate a JSON cell spec into a :class:`SystemConfig`."""
    config = bench_config(**spec.get("gpu", {}))
    config = config.with_scheme(spec["scheme"], **spec.get("protection", {}))
    res = spec.get("resilience")
    if res is not None:
        processes = tuple(
            make_process(**dict(p)) for p in res.get("fault_processes", ())
        )
        config = config.with_resilience(ResilienceConfig(
            recovery=RecoveryPolicy(**res.get("recovery", {})),
            fault_processes=processes,
            inject_seed=res.get("inject_seed", 1),
            inject_interval=res.get("inject_interval", 500),
        ))
    return config


def run_cell_result(spec: Dict[str, Any]) -> "RunResult":
    """Run one cell spec and return the full
    :class:`~repro.core.results.RunResult`.

    This is the simulation core both entry points share: the JSON
    subprocess boundary (:func:`run_cell`) wraps it in a summary
    object, while the in-process parallel harness
    (:meth:`repro.analysis.harness.ExperimentHarness.matrix` with
    ``workers``) calls it directly through a ``ProcessPoolExecutor``.
    A spec travelling through pickle may carry the fully-built
    :class:`~repro.core.config.SystemConfig` under ``"config"``;
    otherwise the config is reconstructed from the JSON fields via
    :func:`build_cell_config`.
    """
    sabotage = spec.get("sabotage")
    if sabotage == "hang":
        time.sleep(3600)
    elif sabotage == "crash":
        os._exit(13)

    config = spec.get("config")
    if config is None:
        config = build_cell_config(spec)
    system = GpuSystem(config)
    workload = make_workload(spec["workload"],
                             **spec.get("workload_params", {}))
    gen_ctx = bench_gen_ctx(config, scale=spec.get("scale", 0.3),
                            seed=spec.get("seed", 42))
    system.load_workload(workload, gen_ctx)

    if sabotage == "livelock":
        def spin() -> None:
            """Reschedule forever at the same cycle (watchdog bait)."""
            system.sim.schedule(0, spin)
        system.sim.schedule(0, spin)

    watchdog = Watchdog(max_wall_seconds=spec.get("max_wall_seconds"))
    started = time.perf_counter()
    cycles = system.run(max_events=spec.get("max_events"), watchdog=watchdog)
    host_seconds = time.perf_counter() - started
    return system.result(workload.name, cycles, host_seconds)


def run_cell(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Run one cell spec and return its JSON-ready result object."""
    result = run_cell_result(spec)
    resilience_stats = {
        k: v for k, v in result.stats.items()
        if k.startswith(("resilience.", "injector."))
    }
    return {
        "cell": spec.get("cell", f"{spec['workload']}/{spec['scheme']}"),
        "status": "ok",
        "workload": result.workload,
        "scheme": spec["scheme"],
        "cycles": result.cycles,
        "traffic": result.traffic,
        "resilience": resilience_stats,
        "host_seconds": round(result.host_seconds, 3),
    }


def main() -> int:
    """Read a cell spec from stdin, run it, print the result JSON."""
    spec = json.load(sys.stdin)
    try:
        out = run_cell(spec)
    except Exception as exc:  # noqa: BLE001 — the whole point is isolation
        json.dump({"cell": spec.get("cell", "?"), "status": "error",
                   "error": f"{type(exc).__name__}: {exc}"}, sys.stdout)
        sys.stdout.write("\n")
        return 1
    json.dump(out, sys.stdout)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
