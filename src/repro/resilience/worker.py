"""Subprocess entry point for one campaign cell.

Reads a JSON *cell spec* from stdin, runs the described simulation,
and writes a single JSON result object to stdout.  Run as::

    python -m repro.resilience.worker < cell.json

The process boundary is the isolation mechanism: a crash, hang or
interpreter fault in one cell cannot take down the campaign runner.
Exit status 0 means the result object has ``"status": "ok"``; any
failure exits non-zero after (best-effort) printing a
``"status": "error"`` object.

Cell spec fields (all optional except ``workload``/``scheme``)::

    {"cell": "spmv/cachecraft", "workload": "spmv", "scheme": "cachecraft",
     "scale": 0.1, "seed": 42, "workload_params": {}, "gpu": {...},
     "protection": {...},
     "resilience": {"recovery": {...RecoveryPolicy fields...},
                    "fault_processes": [{"kind": "transient", ...}],
                    "inject_seed": 1, "inject_interval": 500},
     "max_events": 20000000, "max_wall_seconds": 120,
     "sabotage": null, "fidelity": "event",
     "chaos_attempt": 1, "degraded": false}

``sabotage`` is a test hook for exercising the runner's fault
handling: ``"hang"`` sleeps forever (runner timeout must kill it),
``"crash"`` exits hard with a non-zero status, and ``"livelock"``
schedules a zero-delay self-rescheduling event so the engine watchdog
fires.

``chaos_attempt`` (campaign-global attempt number, stamped by the
runner only while a :mod:`repro.resilience.chaos` policy is active)
arms the host-fault seam at the top of :func:`run_cell_result`;
``fidelity``/``degraded`` mark a graceful-degradation rescue attempt
rerunning the cell on the functional tier.
"""

from __future__ import annotations

import json
import os
import signal
import sys
import time
from typing import Any, Dict

from repro.analysis.harness import bench_config, bench_gen_ctx
from repro.core.config import ResilienceConfig
from repro.core.results import RunResult
from repro.core.system import GpuSystem
from repro.obs.progress import (PROGRESS_ENV, HeartbeatThread, ProgressWriter,
                                heartbeat_interval)
from repro.obs.structlog import StructLog, resolve_log, run_context
from repro.resilience.chaos import active_chaos
from repro.resilience.faults import make_process
from repro.resilience.recovery import RecoveryPolicy
from repro.sim.engine import Watchdog
from repro.workloads import make_workload


def _cell_telemetry(spec: Dict[str, Any], cell_id: str):
    """Resolve the telemetry channels a cell spec (or the environment)
    points this worker at.

    Pool specs carry ``log``/``log_level``/``progress_dir`` keys;
    campaign subprocesses inherit ``REPRO_LOG`` / ``REPRO_PROGRESS_DIR``
    from the parent.  Returns ``(log, progress_writer_or_None)``.
    """
    if spec.get("log"):
        log = StructLog(spec["log"], level=spec.get("log_level", "debug"))
    else:
        log = resolve_log(None)  # environment default
    if log.enabled:
        log = log.bind(**run_context(cell=cell_id, role="worker"))
    progress_dir = spec.get("progress_dir") or os.environ.get(PROGRESS_ENV)
    progress = (ProgressWriter(progress_dir, role="worker")
                if progress_dir else None)
    return log, progress


def _chaos_seam(spec: Dict[str, Any], cell_id: str, log) -> None:
    """Host-fault injection point for campaign subprocess attempts.

    Only specs carrying ``chaos_attempt`` (stamped by the campaign
    runner per spawn, numbered across retries and resumes) are
    attacked — pool workers share a ``ProcessPoolExecutor`` whose
    death would take down unrelated cells, and degraded rescue
    attempts are deliberately exempt.
    """
    chaos = active_chaos()
    attempt = int(spec.get("chaos_attempt") or 0)
    if chaos is None or attempt <= 0:
        return
    fault = chaos.worker_fault(cell_id, attempt)
    if fault == "kill":
        log.warn("chaos.worker.kill", attempt=attempt)
        os.kill(os.getpid(), signal.SIGKILL)
    elif fault == "hang":
        log.warn("chaos.worker.hang", attempt=attempt)
        time.sleep(3600)
    elif fault == "slow":
        log.warn("chaos.worker.slow", attempt=attempt,
                 seconds=chaos.slow_seconds)
        time.sleep(chaos.slow_seconds)


def build_cell_config(spec: Dict[str, Any]):
    """Translate a JSON cell spec into a :class:`SystemConfig`."""
    config = bench_config(**spec.get("gpu", {}))
    config = config.with_scheme(spec["scheme"], **spec.get("protection", {}))
    if spec.get("fidelity"):
        config = config.with_fidelity(spec["fidelity"])
    res = spec.get("resilience")
    if res is not None:
        processes = tuple(
            make_process(**dict(p)) for p in res.get("fault_processes", ())
        )
        config = config.with_resilience(ResilienceConfig(
            recovery=RecoveryPolicy(**res.get("recovery", {})),
            fault_processes=processes,
            inject_seed=res.get("inject_seed", 1),
            inject_interval=res.get("inject_interval", 500),
        ))
    return config


def run_cell_result(spec: Dict[str, Any]) -> "RunResult":
    """Run one cell spec and return the full
    :class:`~repro.core.results.RunResult`.

    This is the simulation core both entry points share: the JSON
    subprocess boundary (:func:`run_cell`) wraps it in a summary
    object, while the in-process parallel harness
    (:meth:`repro.analysis.harness.ExperimentHarness.matrix` with
    ``workers``) calls it directly through a ``ProcessPoolExecutor``.
    A spec travelling through pickle may carry the fully-built
    :class:`~repro.core.config.SystemConfig` under ``"config"``;
    otherwise the config is reconstructed from the JSON fields via
    :func:`build_cell_config`.
    """
    cell_id = spec.get("cell",
                       f"{spec.get('workload', '?')}/{spec.get('scheme', '?')}")
    log, progress = _cell_telemetry(spec, cell_id)
    sabotage = spec.get("sabotage")
    log.info("worker.cell.start", sabotage=sabotage)
    heartbeat = None
    if progress is not None:
        # Lifecycle + liveness: the start record marks the cell
        # in-flight, the heartbeat thread keeps this pid fresh; a hang
        # from here on shows up as a stale worker in `obs top`.
        progress.cell(cell_id, "start")
        heartbeat = HeartbeatThread(progress, heartbeat_interval()).start()
    try:
        # Chaos fires after the progress/heartbeat start records, so a
        # killed or hung worker is visible in `obs top` exactly like a
        # real host fault would be.
        _chaos_seam(spec, cell_id, log)
        if sabotage == "hang":
            time.sleep(3600)
        elif sabotage == "crash":
            os._exit(13)

        config = spec.get("config")
        if config is None:
            config = build_cell_config(spec)
        system = GpuSystem(config)
        workload = make_workload(spec["workload"],
                                 **spec.get("workload_params", {}))
        gen_ctx = bench_gen_ctx(config, scale=spec.get("scale", 0.3),
                                seed=spec.get("seed", 42))
        system.load_workload(workload, gen_ctx)

        if sabotage == "livelock":
            def spin() -> None:
                """Reschedule forever at the same cycle (watchdog bait)."""
                system.sim.schedule(0, spin)
            system.sim.schedule(0, spin)

        watchdog = Watchdog(max_wall_seconds=spec.get("max_wall_seconds"))
        started = time.perf_counter()
        cycles = system.run(max_events=spec.get("max_events"),
                            watchdog=watchdog)
        host_seconds = time.perf_counter() - started
        result = system.result(workload.name, cycles, host_seconds)
    except Exception as exc:
        error = f"{type(exc).__name__}: {exc}"
        if "watchdog" in str(exc):
            log.warn("worker.watchdog_fire", error=error)
        log.error("worker.cell.failed", error=error)
        if progress is not None:
            progress.cell(cell_id, "failed", error=error)
        raise
    finally:
        if heartbeat is not None:
            heartbeat.stop()
    log.info("worker.cell.done", cycles=result.cycles,
             events=int(result.events_executed),
             host_seconds=round(result.host_seconds, 3))
    if progress is not None:
        progress.cell(cell_id, "done",
                      events=int(result.events_executed),
                      host_seconds=round(result.host_seconds, 3))
    return result


def run_cell(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Run one cell spec and return its JSON-ready result object."""
    result = run_cell_result(spec)
    resilience_stats = {
        k: v for k, v in result.stats.items()
        if k.startswith(("resilience.", "injector."))
    }
    out = {
        "cell": spec.get("cell", f"{spec['workload']}/{spec['scheme']}"),
        "status": "ok",
        "workload": result.workload,
        "scheme": spec["scheme"],
        "fidelity": getattr(result, "fidelity", "event"),
        "cycles": result.cycles,
        "traffic": result.traffic,
        "resilience": resilience_stats,
        "host_seconds": round(result.host_seconds, 3),
    }
    if spec.get("degraded"):
        out["degraded"] = True
    return out


def main() -> int:
    """Read a cell spec from stdin, run it, print the result JSON."""
    spec = json.load(sys.stdin)
    try:
        out = run_cell(spec)
    except Exception as exc:  # noqa: BLE001 — the whole point is isolation
        json.dump({"cell": spec.get("cell", "?"), "status": "error",
                   "error": f"{type(exc).__name__}: {exc}"}, sys.stdout)
        sys.stdout.write("\n")
        return 1
    json.dump(out, sys.stdout)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
