"""Resilient campaign runner: subprocess fan-out with checkpoint/resume.

A *campaign* is a list of JSON cell specs (see
:mod:`repro.resilience.worker`).  The :class:`CampaignRunner` executes
them in parallel subprocess workers with:

* **crash isolation** — a worker that dies (segfault, ``os._exit``,
  unhandled exception) fails only its own cell;
* **per-run timeouts** — a hung worker is killed after ``timeout``
  host seconds;
* **retry with backoff** — failed cells are re-queued up to
  ``max_attempts`` times with exponentially growing delays, then
  recorded as failed (the sweep continues);
* **a JSONL journal** — one flushed record per outcome.  Re-running
  with ``resume=True`` skips every cell the journal already marks
  ``done``, so a campaign killed mid-flight completes only the
  unfinished cells.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.obs.progress import PROGRESS_ENV, ProgressWriter
from repro.obs.structlog import (LOG_ENV, LOG_LEVEL_ENV, NullLog,
                                 resolve_log, run_context)


def build_cells(workloads: Sequence[str], schemes: Sequence[str],
                scale: float = 0.3, seed: int = 42,
                gpu: Optional[Dict[str, Any]] = None,
                protection: Optional[Dict[str, Any]] = None,
                resilience: Optional[Dict[str, Any]] = None,
                max_events: Optional[int] = None,
                max_wall_seconds: Optional[float] = None,
                sabotage: Optional[Dict[str, str]] = None
                ) -> List[Dict[str, Any]]:
    """The standard workload x scheme grid as a list of cell specs.

    ``sabotage`` maps cell ids (``"workload/scheme"``) to a sabotage
    mode — a testing aid for exercising the runner's fault handling.
    """
    cells = []
    for workload in workloads:
        for scheme in schemes:
            cell_id = f"{workload}/{scheme}"
            spec: Dict[str, Any] = {
                "cell": cell_id, "workload": workload, "scheme": scheme,
                "scale": scale, "seed": seed,
            }
            if gpu:
                spec["gpu"] = dict(gpu)
            if protection:
                spec["protection"] = dict(protection)
            if resilience is not None:
                spec["resilience"] = resilience
            if max_events is not None:
                spec["max_events"] = max_events
            if max_wall_seconds is not None:
                spec["max_wall_seconds"] = max_wall_seconds
            if sabotage and cell_id in sabotage:
                spec["sabotage"] = sabotage[cell_id]
            cells.append(spec)
    return cells


@dataclass
class CampaignSummary:
    """Outcome of one :meth:`CampaignRunner.run` invocation."""

    done: List[str] = field(default_factory=list)
    failed: List[str] = field(default_factory=list)
    #: Cells skipped because the journal already marked them done.
    skipped: List[str] = field(default_factory=list)
    #: Final journal record per executed cell id.
    records: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when no cell ended in failure."""
        return not self.failed


class _Running:
    """Bookkeeping for one in-flight worker process."""

    def __init__(self, cell: Dict[str, Any], attempt: int,
                 proc: subprocess.Popen, deadline: Optional[float]):
        self.cell = cell
        self.attempt = attempt
        self.proc = proc
        self.deadline = deadline
        self.started = time.monotonic()


class CampaignRunner:
    """Fans cell specs out to subprocess workers; journals outcomes."""

    def __init__(self, journal_path: str, workers: int = 2,
                 timeout: Optional[float] = None, max_attempts: int = 2,
                 retry_backoff: float = 0.5,
                 python: Optional[str] = None,
                 ledger=None,
                 log: Union[None, bool, str, os.PathLike, NullLog] = None,
                 progress_dir: Union[None, str, os.PathLike] = None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.journal_path = Path(journal_path)
        self.workers = workers
        self.timeout = timeout
        self.max_attempts = max_attempts
        self.retry_backoff = retry_backoff
        self.python = python or sys.executable
        #: Structured event log (:mod:`repro.obs.structlog`); workers
        #: inherit it through ``REPRO_LOG`` so one file narrates the
        #: whole campaign across processes.
        self.log = resolve_log(log)
        if self.log.enabled:
            self.log = self.log.bind(**run_context(run="campaign",
                                                   role="parent"))
        #: Live progress channel (:mod:`repro.obs.progress`): the
        #: parent journals plan/retry/timeout/failure transitions — it
        #: is the authority on outcomes — while workers contribute
        #: their own start/done records and heartbeats via
        #: ``REPRO_PROGRESS_DIR``.
        self.progress: Optional[ProgressWriter] = (
            ProgressWriter(progress_dir, role="parent")
            if progress_dir else None)
        #: Optional cross-run telemetry ledger
        #: (:class:`repro.obs.ledger.RunLedger`).  Subprocess workers
        #: cannot write it themselves — the parent appends one record
        #: per completed cell on result receipt, so campaign cells
        #: leave the same run-history trail as in-process experiments.
        self.ledger = ledger
        self._journal_fh = None

    # -- journal ---------------------------------------------------------------

    def completed_cells(self) -> Dict[str, Dict[str, Any]]:
        """Cells the journal marks ``done`` (for resume)."""
        done: Dict[str, Dict[str, Any]] = {}
        if not self.journal_path.exists():
            return done
        with self.journal_path.open() as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue  # torn tail write from a killed campaign
                if record.get("status") == "done":
                    done[record["cell"]] = record
        return done

    def _journal(self, record: Dict[str, Any]) -> None:
        assert self._journal_fh is not None
        self._journal_fh.write(json.dumps(record) + "\n")
        self._journal_fh.flush()
        os.fsync(self._journal_fh.fileno())

    def _ledger_append(self, cell: Dict[str, Any],
                       result: Dict[str, Any]) -> None:
        """Cross-run telemetry for one completed cell (parent-side)."""
        if self.ledger is None:
            return
        # Imported lazily: the ledger is optional equipment here.
        from repro.obs.ledger import record_from_cell

        self.ledger.safe_append(record_from_cell(
            result, scale=cell.get("scale"), seed=cell.get("seed")))

    # -- workers ---------------------------------------------------------------

    def _spawn(self, cell: Dict[str, Any], attempt: int) -> _Running:
        env = dict(os.environ)
        src_dir = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (src_dir if not existing
                             else src_dir + os.pathsep + existing)
        # Telemetry channels cross the subprocess boundary by path.
        if self.log.enabled:
            env[LOG_ENV] = str(self.log.path)
            env[LOG_LEVEL_ENV] = getattr(self.log, "level", "debug")
        if self.progress is not None:
            env[PROGRESS_ENV] = str(self.progress.dir)
        proc = subprocess.Popen(
            [self.python, "-m", "repro.resilience.worker"],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, text=True, env=env)
        assert proc.stdin is not None
        proc.stdin.write(json.dumps(cell))
        proc.stdin.close()
        # communicate() must not try to flush the already-closed pipe.
        proc.stdin = None
        deadline = (time.monotonic() + self.timeout
                    if self.timeout is not None else None)
        return _Running(cell, attempt, proc, deadline)

    @staticmethod
    def _harvest(run: _Running) -> Dict[str, Any]:
        """Collect a finished worker's result (or error description)."""
        stdout, stderr = run.proc.communicate()
        if run.proc.returncode == 0:
            for line in stdout.splitlines():
                line = line.strip()
                if line.startswith("{"):
                    try:
                        return json.loads(line)
                    except ValueError:
                        break
        error = f"worker exited with status {run.proc.returncode}"
        for line in stdout.splitlines():  # worker's own error object
            line = line.strip()
            if line.startswith("{"):
                try:
                    parsed = json.loads(line)
                    error = parsed.get("error", error)
                except ValueError:
                    pass
        if stderr.strip():
            error += f"; stderr: {stderr.strip().splitlines()[-1]}"
        return {"status": "error", "error": error}

    # -- the sweep --------------------------------------------------------------

    def run(self, cells: Sequence[Dict[str, Any]], resume: bool = True,
            progress=None) -> CampaignSummary:
        """Execute a campaign; returns its :class:`CampaignSummary`.

        ``progress`` is an optional callable receiving one line of
        human-readable status per event (spawn/done/fail/retry).
        """
        summary = CampaignSummary()
        started_at = time.monotonic()
        done = self.completed_cells() if resume else {}
        if not resume and self.journal_path.exists():
            self.journal_path.unlink()
        pending: List[tuple] = []  # (not_before, attempt, cell)
        for cell in cells:
            cell_id = cell["cell"]
            if cell_id in done:
                summary.skipped.append(cell_id)
                summary.records[cell_id] = done[cell_id]
                if self.progress is not None:
                    # Resumed cells are resolved without simulation —
                    # the campaign analogue of a cache hit.
                    self.progress.cell(cell_id, "cached")
                continue
            pending.append((0.0, 1, cell))
        if self.progress is not None:
            self.progress.plan(len(cells), label="campaign")
        self.log.info("campaign.start", cells=len(cells),
                      skipped=len(summary.skipped), workers=self.workers,
                      journal=str(self.journal_path))
        self.journal_path.parent.mkdir(parents=True, exist_ok=True)
        self._journal_fh = self.journal_path.open("a")
        running: List[_Running] = []
        say = progress or (lambda _line: None)
        try:
            while pending or running:
                now = time.monotonic()
                # Launch while capacity and due work exist.
                while len(running) < self.workers:
                    due = next((i for i, (nb, _a, _c) in enumerate(pending)
                                if nb <= now), None)
                    if due is None:
                        break
                    _nb, attempt, cell = pending.pop(due)
                    run = self._spawn(cell, attempt)
                    running.append(run)
                    self.log.info("campaign.worker.spawn",
                                  cell=cell["cell"], attempt=attempt,
                                  worker_pid=run.proc.pid)
                    say(f"start {cell['cell']} (attempt {attempt})")
                # Poll in-flight workers.
                still: List[_Running] = []
                for run in running:
                    code = run.proc.poll()
                    timed_out = (code is None and run.deadline is not None
                                 and now >= run.deadline)
                    if code is None and not timed_out:
                        still.append(run)
                        continue
                    if timed_out:
                        run.proc.kill()
                        run.proc.communicate()
                        result = {"status": "error",
                                  "error": f"timeout after {self.timeout}s"}
                        self.log.warn("campaign.worker.timeout",
                                      cell=run.cell["cell"],
                                      attempt=run.attempt,
                                      worker_pid=run.proc.pid,
                                      timeout=self.timeout)
                    else:
                        result = self._harvest(run)
                    elapsed = round(time.monotonic() - run.started, 3)
                    cell_id = run.cell["cell"]
                    if result.get("status") == "ok":
                        self._journal({"cell": cell_id, "status": "done",
                                       "attempts": run.attempt,
                                       "elapsed": elapsed, "result": result})
                        summary.done.append(cell_id)
                        summary.records[cell_id] = result
                        self._ledger_append(run.cell, result)
                        self.log.info("campaign.cell.done", cell=cell_id,
                                      attempts=run.attempt, elapsed=elapsed)
                        say(f"done  {cell_id} ({elapsed}s)")
                        continue
                    error = result.get("error", "unknown failure")
                    if run.attempt < self.max_attempts:
                        delay = self.retry_backoff * (2 ** (run.attempt - 1))
                        self._journal({"cell": cell_id,
                                       "status": "attempt_failed",
                                       "attempts": run.attempt,
                                       "error": error, "retry_in": delay})
                        pending.append((time.monotonic() + delay,
                                        run.attempt + 1, run.cell))
                        self.log.warn("campaign.cell.retry", cell=cell_id,
                                      attempt=run.attempt, error=error,
                                      retry_in=delay)
                        if self.progress is not None:
                            self.progress.cell(cell_id, "retry", error=error,
                                               attempt=run.attempt + 1)
                        say(f"retry {cell_id}: {error} "
                            f"(attempt {run.attempt + 1} in {delay}s)")
                    else:
                        record = {"cell": cell_id, "status": "failed",
                                  "attempts": run.attempt, "error": error,
                                  "elapsed": elapsed}
                        self._journal(record)
                        summary.failed.append(cell_id)
                        summary.records[cell_id] = record
                        self.log.error("campaign.cell.failed", cell=cell_id,
                                       attempts=run.attempt, error=error)
                        if self.progress is not None:
                            self.progress.cell(cell_id, "failed",
                                               error=error)
                        say(f"FAIL  {cell_id}: {error}")
                running = still
                if pending or running:
                    time.sleep(0.02)
        finally:
            for run in running:  # interrupted: leave no orphans behind
                try:
                    run.proc.kill()
                    run.proc.communicate()
                except (OSError, ValueError):
                    pass
            self._journal_fh.close()
            self._journal_fh = None
        wall_seconds = round(time.monotonic() - started_at, 3)
        self.log.info("campaign.done", done=len(summary.done),
                      failed=len(summary.failed),
                      skipped=len(summary.skipped),
                      wall_seconds=wall_seconds)
        self._session_record(summary, wall_seconds)
        return summary

    def _session_record(self, summary: CampaignSummary,
                        wall_seconds: float) -> None:
        """One ``kind="session"`` ledger record closing the campaign,
        linking it to its structured log and progress directory."""
        if self.ledger is None:
            return
        from repro.obs.ledger import record_from_session

        self.ledger.safe_append(record_from_session(
            "campaign",
            {"cells_total": (len(summary.done) + len(summary.failed)
                             + len(summary.skipped)),
             "cells_done": len(summary.done),
             "cells_failed": len(summary.failed),
             "cells_cached": len(summary.skipped),
             "wall_seconds": wall_seconds},
            log_path=str(self.log.path) if self.log.enabled else None,
            progress_dir=(str(self.progress.dir)
                          if self.progress is not None else None)))
