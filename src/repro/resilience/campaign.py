"""Resilient campaign runner: subprocess fan-out with checkpoint/resume.

A *campaign* is a list of JSON cell specs (see
:mod:`repro.resilience.worker`).  The :class:`CampaignRunner` executes
them in parallel subprocess workers with:

* **crash isolation** — a worker that dies (segfault, ``os._exit``,
  unhandled exception) fails only its own cell;
* **per-run timeouts** — a hung worker is killed after ``timeout``
  host seconds;
* **a failure taxonomy** — every failure is classified:

  - *transient* (the process died: signal, hard exit, timeout) —
    retried up to ``max_attempts`` times with exponential backoff,
    a configurable cap (``retry_backoff_max``) and deterministic
    per-cell jitter so retry stampedes desynchronize;
  - *persistent* (the worker ran and reported its own error JSON) —
    retried a bounded number of times (at most
    :attr:`CampaignRunner.persistent_max_attempts`) regardless of
    ``max_attempts``, because the same input will keep producing the
    same error;
  - *crash-looping* (every attempt died transiently, two or more
    times) — the cell is **quarantined**: journaled as
    ``status="quarantined"``, skipped by future resumes, surfaced in
    :class:`CampaignSummary`, ``obs top`` and the session ledger
    record.  ``repro fsck --repair`` releases quarantines, which is
    the operator's explicit "try again" signal;

* **graceful degradation** — with ``degrade=True``, a cell that
  exhausts its attempt budget (and carries no resilience config) gets
  one final rescue attempt on the functional fidelity tier,
  flagged ``degraded`` in the journal and ledger provenance;
* **a JSONL journal** — one fsynced, checksummed record per outcome
  via the shared :func:`~repro.obs.structlog.append_jsonl` path.
  Re-running with ``resume=True`` skips every cell the journal
  already marks ``done`` (or ``quarantined``), so a campaign killed
  mid-flight completes only the unfinished cells.  The journal also
  carries per-cell attempt counts across resumes, which keeps
  deterministic chaos (:mod:`repro.resilience.chaos`) drawing fresh
  fault decisions instead of re-dooming the same attempt forever.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.progress import PROGRESS_ENV, ProgressWriter
from repro.obs.structlog import (LOG_ENV, LOG_LEVEL_ENV, NullLog,
                                 append_jsonl, read_jsonl, resolve_log,
                                 run_context)
from repro.resilience.chaos import active_chaos, stream_unit


def build_cells(workloads: Sequence[str], schemes: Sequence[str],
                scale: float = 0.3, seed: int = 42,
                gpu: Optional[Dict[str, Any]] = None,
                protection: Optional[Dict[str, Any]] = None,
                resilience: Optional[Dict[str, Any]] = None,
                max_events: Optional[int] = None,
                max_wall_seconds: Optional[float] = None,
                sabotage: Optional[Dict[str, str]] = None
                ) -> List[Dict[str, Any]]:
    """The standard workload x scheme grid as a list of cell specs.

    ``sabotage`` maps cell ids (``"workload/scheme"``) to a sabotage
    mode — a testing aid for exercising the runner's fault handling.
    """
    cells = []
    for workload in workloads:
        for scheme in schemes:
            cell_id = f"{workload}/{scheme}"
            spec: Dict[str, Any] = {
                "cell": cell_id, "workload": workload, "scheme": scheme,
                "scale": scale, "seed": seed,
            }
            if gpu:
                spec["gpu"] = dict(gpu)
            if protection:
                spec["protection"] = dict(protection)
            if resilience is not None:
                spec["resilience"] = resilience
            if max_events is not None:
                spec["max_events"] = max_events
            if max_wall_seconds is not None:
                spec["max_wall_seconds"] = max_wall_seconds
            if sabotage and cell_id in sabotage:
                spec["sabotage"] = sabotage[cell_id]
            cells.append(spec)
    return cells


@dataclass
class CampaignSummary:
    """Outcome of one :meth:`CampaignRunner.run` invocation."""

    done: List[str] = field(default_factory=list)
    failed: List[str] = field(default_factory=list)
    #: Cells skipped because the journal already marked them done.
    skipped: List[str] = field(default_factory=list)
    #: Crash-looping cells parked on the journal-backed quarantine
    #: list (this run or a prior one); not retried until released.
    quarantined: List[str] = field(default_factory=list)
    #: Cells rescued by the graceful-degradation hook (functional
    #: tier); they also appear in :attr:`done`.
    degraded: List[str] = field(default_factory=list)
    #: Final journal record per executed cell id.
    records: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when no cell ended in failure or quarantine."""
        return not self.failed and not self.quarantined


class _Running:
    """Bookkeeping for one in-flight worker process."""

    def __init__(self, cell: Dict[str, Any], attempt: int,
                 proc: subprocess.Popen, deadline: Optional[float],
                 degraded: bool = False):
        self.cell = cell
        self.attempt = attempt
        self.proc = proc
        self.deadline = deadline
        self.degraded = degraded
        self.started = time.monotonic()


class CampaignRunner:
    """Fans cell specs out to subprocess workers; journals outcomes."""

    #: Attempt ceiling for *persistent* failures (the worker ran and
    #: reported its own error): the same input keeps producing the
    #: same error, so retrying past this is waste.
    persistent_max_attempts = 2

    #: Minimum transient-failure count before a cell is declared
    #: crash-looping and quarantined rather than plain-failed.
    quarantine_after = 2

    def __init__(self, journal_path: str, workers: int = 2,
                 timeout: Optional[float] = None, max_attempts: int = 2,
                 retry_backoff: float = 0.5,
                 retry_backoff_max: float = 30.0,
                 degrade: bool = False,
                 python: Optional[str] = None,
                 ledger=None,
                 log: Union[None, bool, str, os.PathLike, NullLog] = None,
                 progress_dir: Union[None, str, os.PathLike] = None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if retry_backoff_max <= 0:
            raise ValueError("retry_backoff_max must be > 0")
        self.journal_path = Path(journal_path)
        self.workers = workers
        self.timeout = timeout
        self.max_attempts = max_attempts
        self.retry_backoff = retry_backoff
        self.retry_backoff_max = retry_backoff_max
        self.degrade = degrade
        self.python = python or sys.executable
        #: Structured event log (:mod:`repro.obs.structlog`); workers
        #: inherit it through ``REPRO_LOG`` so one file narrates the
        #: whole campaign across processes.
        self.log = resolve_log(log)
        if self.log.enabled:
            self.log = self.log.bind(**run_context(run="campaign",
                                                   role="parent"))
        #: Live progress channel (:mod:`repro.obs.progress`): the
        #: parent journals plan/retry/timeout/failure transitions — it
        #: is the authority on outcomes — while workers contribute
        #: their own start/done records and heartbeats via
        #: ``REPRO_PROGRESS_DIR``.
        self.progress: Optional[ProgressWriter] = (
            ProgressWriter(progress_dir, role="parent")
            if progress_dir else None)
        #: Optional cross-run telemetry ledger
        #: (:class:`repro.obs.ledger.RunLedger`).  Subprocess workers
        #: cannot write it themselves — the parent appends one record
        #: per completed cell on result receipt, so campaign cells
        #: leave the same run-history trail as in-process experiments.
        self.ledger = ledger
        self._journal_warned = False
        #: Failure-class history per cell for the current invocation.
        self._fail_classes: Dict[str, List[str]] = {}
        #: Journal-derived attempt counts from prior invocations, so
        #: chaos decision sites keep advancing across resumes.
        self._attempt_offset: Dict[str, int] = {}

    # -- journal ---------------------------------------------------------------

    def journal_state(self) -> Tuple[Dict[str, Dict[str, Any]],
                                     Dict[str, Dict[str, Any]],
                                     Dict[str, int]]:
        """Fold the journal into ``(done, quarantined, attempts)``.

        ``done`` and ``quarantined`` map cell ids to their latest
        terminal record (a later ``done`` releases an earlier
        quarantine — fsck rewrote the journal, or an operator reran
        the cell); ``attempts`` carries the highest attempt number
        each cell has burned across all prior invocations.
        """
        done: Dict[str, Dict[str, Any]] = {}
        quarantined: Dict[str, Dict[str, Any]] = {}
        attempts: Dict[str, int] = {}
        for record in read_jsonl(self.journal_path):
            cell = record.get("cell")
            if not cell:
                continue
            n = record.get("attempts")
            if isinstance(n, int):
                attempts[cell] = max(attempts.get(cell, 0), n)
            status = record.get("status")
            if status == "done":
                done[cell] = record
                quarantined.pop(cell, None)
            elif status == "quarantined":
                quarantined[cell] = record
        return done, quarantined, attempts

    def completed_cells(self) -> Dict[str, Dict[str, Any]]:
        """Cells the journal marks ``done`` (for resume)."""
        return self.journal_state()[0]

    def _journal(self, record: Dict[str, Any]) -> None:
        """Append one fsynced journal record (best-effort: a full disk
        must degrade to re-running cells on resume, not kill the
        campaign mid-sweep)."""
        try:
            append_jsonl(self.journal_path, record, fsync=True)
        except OSError as exc:
            if not self._journal_warned:
                self._journal_warned = True
                print(f"warning: campaign journal append to "
                      f"{self.journal_path} failed: {exc}", file=sys.stderr)
            self.log.warn("campaign.journal.append_failed", error=str(exc))

    def retry_delay(self, cell_id: str, attempt: int) -> float:
        """Backoff before retrying ``cell_id`` after failed ``attempt``:
        exponential growth from ``retry_backoff``, capped at
        ``retry_backoff_max``, scaled by a deterministic per-cell
        jitter factor in ``[0.5, 1.5)`` so simultaneous failures do
        not retry in lockstep."""
        base = min(self.retry_backoff * (2 ** (attempt - 1)),
                   self.retry_backoff_max)
        jitter = 0.5 + stream_unit(0, f"jitter:{cell_id}:{attempt}")
        return round(base * jitter, 6)

    @staticmethod
    def classify_failure(result: Dict[str, Any]) -> str:
        """``"transient"`` or ``"persistent"`` for one failed harvest.

        The worker *reporting its own error* (exit 1 with a
        ``status="error"`` JSON object) means the input is bad in a
        repeatable way — persistent.  Everything else (signal death,
        hard exit without a report, timeout) is the host's fault —
        transient, worth a full retry budget.
        """
        if result.get("timeout"):
            return "transient"
        if result.get("worker_reported") and result.get("returncode") == 1:
            return "persistent"
        return "transient"

    def _degradable(self, cell: Dict[str, Any]) -> bool:
        """Can this cell be rescued on the functional tier?  Only
        event-fidelity cells without a resilience config — the
        functional tier rejects fault injection by design."""
        return (cell.get("resilience") is None
                and cell.get("fidelity", "event") == "event")

    def _ledger_append(self, cell: Dict[str, Any],
                       result: Dict[str, Any]) -> None:
        """Cross-run telemetry for one completed cell (parent-side)."""
        if self.ledger is None:
            return
        # Imported lazily: the ledger is optional equipment here.
        from repro.obs.ledger import record_from_cell

        self.ledger.safe_append(record_from_cell(
            result, scale=cell.get("scale"), seed=cell.get("seed")))

    # -- workers ---------------------------------------------------------------

    def _spawn(self, cell: Dict[str, Any], attempt: int,
               degraded: bool = False) -> _Running:
        spec = cell
        if degraded:
            # Rescue attempts run the counters-only tier and are
            # exempt from worker chaos: the point is to salvage a
            # result, not to keep attacking it.
            spec = dict(cell)
            spec["fidelity"] = "functional"
            spec["degraded"] = True
            spec.pop("chaos_attempt", None)
        elif active_chaos() is not None:
            spec = dict(cell)
            spec["chaos_attempt"] = (
                self._attempt_offset.get(cell["cell"], 0) + attempt)
        env = dict(os.environ)
        src_dir = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (src_dir if not existing
                             else src_dir + os.pathsep + existing)
        # Telemetry channels cross the subprocess boundary by path.
        if self.log.enabled:
            env[LOG_ENV] = str(self.log.path)
            env[LOG_LEVEL_ENV] = getattr(self.log, "level", "debug")
        if self.progress is not None:
            env[PROGRESS_ENV] = str(self.progress.dir)
        proc = subprocess.Popen(
            [self.python, "-m", "repro.resilience.worker"],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, text=True, env=env)
        assert proc.stdin is not None
        proc.stdin.write(json.dumps(spec))
        proc.stdin.close()
        # communicate() must not try to flush the already-closed pipe.
        proc.stdin = None
        deadline = (time.monotonic() + self.timeout
                    if self.timeout is not None else None)
        return _Running(cell, attempt, proc, deadline, degraded)

    @staticmethod
    def _harvest(run: _Running) -> Dict[str, Any]:
        """Collect a finished worker's result (or error description).

        Error results carry the raw material the failure taxonomy
        classifies on: the exit status and whether the worker managed
        to report its own ``status="error"`` object (ran-but-rejected,
        versus died-without-a-word).
        """
        stdout, stderr = run.proc.communicate()
        rc = run.proc.returncode
        if rc == 0:
            for line in stdout.splitlines():
                line = line.strip()
                if line.startswith("{"):
                    try:
                        return json.loads(line)
                    except ValueError:
                        break
        error = f"worker exited with status {rc}"
        worker_reported = False
        for line in stdout.splitlines():  # worker's own error object
            line = line.strip()
            if line.startswith("{"):
                try:
                    parsed = json.loads(line)
                    if parsed.get("error"):
                        error = parsed["error"]
                        worker_reported = True
                except ValueError:
                    pass
        if stderr.strip():
            error += f"; stderr: {stderr.strip().splitlines()[-1]}"
        return {"status": "error", "error": error, "returncode": rc,
                "worker_reported": worker_reported}

    # -- the sweep --------------------------------------------------------------

    def run(self, cells: Sequence[Dict[str, Any]], resume: bool = True,
            progress=None) -> CampaignSummary:
        """Execute a campaign; returns its :class:`CampaignSummary`.

        ``progress`` is an optional callable receiving one line of
        human-readable status per event (spawn/done/fail/retry).
        """
        summary = CampaignSummary()
        started_at = time.monotonic()
        say = progress or (lambda _line: None)
        self._fail_classes = {}
        done, quarantined, self._attempt_offset = (
            self.journal_state() if resume else ({}, {}, {}))
        if not resume and self.journal_path.exists():
            self.journal_path.unlink()
        pending: List[tuple] = []  # (not_before, attempt, cell, degraded)
        for cell in cells:
            cell_id = cell["cell"]
            if cell_id in done:
                summary.skipped.append(cell_id)
                summary.records[cell_id] = done[cell_id]
                if self.progress is not None:
                    # Resumed cells are resolved without simulation —
                    # the campaign analogue of a cache hit.
                    self.progress.cell(cell_id, "cached")
                continue
            if cell_id in quarantined:
                # Journal-backed quarantine: crash-looping cells stay
                # parked until `repro fsck --repair` releases them.
                summary.quarantined.append(cell_id)
                summary.records[cell_id] = quarantined[cell_id]
                if self.progress is not None:
                    self.progress.cell(
                        cell_id, "quarantined",
                        error=quarantined[cell_id].get("error"))
                say(f"QUAR  {cell_id} (quarantined; "
                    f"`repro fsck --repair` releases)")
                continue
            pending.append((0.0, 1, cell, False))
        if self.progress is not None:
            self.progress.plan(len(cells), label="campaign")
        self.log.info("campaign.start", cells=len(cells),
                      skipped=len(summary.skipped),
                      quarantined=len(summary.quarantined),
                      workers=self.workers,
                      journal=str(self.journal_path))
        self.journal_path.parent.mkdir(parents=True, exist_ok=True)
        running: List[_Running] = []
        try:
            while pending or running:
                now = time.monotonic()
                # Launch while capacity and due work exist.
                while len(running) < self.workers:
                    due = next((i for i, entry in enumerate(pending)
                                if entry[0] <= now), None)
                    if due is None:
                        break
                    _nb, attempt, cell, degraded = pending.pop(due)
                    run = self._spawn(cell, attempt, degraded)
                    running.append(run)
                    self.log.info("campaign.worker.spawn",
                                  cell=cell["cell"], attempt=attempt,
                                  degraded=degraded,
                                  worker_pid=run.proc.pid)
                    say(f"start {cell['cell']} (attempt {attempt}"
                        + (", degraded rescue)" if degraded else ")"))
                # Poll in-flight workers.
                still: List[_Running] = []
                for run in running:
                    code = run.proc.poll()
                    timed_out = (code is None and run.deadline is not None
                                 and now >= run.deadline)
                    if code is None and not timed_out:
                        still.append(run)
                        continue
                    if timed_out:
                        run.proc.kill()
                        run.proc.communicate()
                        result = {"status": "error",
                                  "error": f"timeout after {self.timeout}s",
                                  "timeout": True}
                        self.log.warn("campaign.worker.timeout",
                                      cell=run.cell["cell"],
                                      attempt=run.attempt,
                                      worker_pid=run.proc.pid,
                                      timeout=self.timeout)
                    else:
                        result = self._harvest(run)
                    elapsed = round(time.monotonic() - run.started, 3)
                    cell_id = run.cell["cell"]
                    if result.get("status") == "ok":
                        record = {"cell": cell_id, "status": "done",
                                  "attempts": run.attempt,
                                  "elapsed": elapsed, "result": result}
                        if run.degraded:
                            record["degraded"] = True
                        self._journal(record)
                        summary.done.append(cell_id)
                        if run.degraded:
                            summary.degraded.append(cell_id)
                        summary.records[cell_id] = result
                        self._ledger_append(run.cell, result)
                        self.log.info("campaign.cell.done", cell=cell_id,
                                      attempts=run.attempt, elapsed=elapsed,
                                      degraded=run.degraded)
                        say(f"done  {cell_id} ({elapsed}s"
                            + (", degraded)" if run.degraded else ")"))
                        continue
                    error = result.get("error", "unknown failure")
                    fclass = self.classify_failure(result)
                    history = self._fail_classes.setdefault(cell_id, [])
                    history.append(fclass)
                    budget = (self.max_attempts if fclass == "transient"
                              else min(self.max_attempts,
                                       self.persistent_max_attempts))
                    if not run.degraded and run.attempt < budget:
                        delay = self.retry_delay(cell_id, run.attempt)
                        self._journal({"cell": cell_id,
                                       "status": "attempt_failed",
                                       "attempts": run.attempt,
                                       "class": fclass,
                                       "error": error, "retry_in": delay})
                        pending.append((time.monotonic() + delay,
                                        run.attempt + 1, run.cell, False))
                        self.log.warn("campaign.cell.retry", cell=cell_id,
                                      attempt=run.attempt, error=error,
                                      failure_class=fclass, retry_in=delay)
                        if self.progress is not None:
                            self.progress.cell(cell_id, "retry", error=error,
                                               attempt=run.attempt + 1)
                        say(f"retry {cell_id}: {error} [{fclass}] "
                            f"(attempt {run.attempt + 1} in {delay}s)")
                    elif (self.degrade and not run.degraded
                          and self._degradable(run.cell)):
                        # Graceful degradation: one rescue attempt on
                        # the functional tier before giving up.
                        self._journal({"cell": cell_id,
                                       "status": "degrading",
                                       "attempts": run.attempt,
                                       "class": fclass, "error": error})
                        pending.append((time.monotonic(),
                                        run.attempt + 1, run.cell, True))
                        self.log.warn("campaign.cell.degrade", cell=cell_id,
                                      attempt=run.attempt, error=error)
                        if self.progress is not None:
                            self.progress.cell(cell_id, "retry", error=error,
                                               attempt=run.attempt + 1)
                        say(f"degrade {cell_id}: {error} "
                            f"(functional-tier rescue)")
                    else:
                        crash_looping = (
                            len(history) >= self.quarantine_after
                            and all(c == "transient" for c in history))
                        status = ("quarantined" if crash_looping
                                  else "failed")
                        record = {"cell": cell_id, "status": status,
                                  "attempts": run.attempt, "error": error,
                                  "classes": list(history),
                                  "elapsed": elapsed}
                        if crash_looping:
                            record["class"] = "crash-looping"
                        self._journal(record)
                        summary.records[cell_id] = record
                        if crash_looping:
                            summary.quarantined.append(cell_id)
                            self.log.error("campaign.cell.quarantined",
                                           cell=cell_id,
                                           attempts=run.attempt, error=error)
                            if self.progress is not None:
                                self.progress.cell(cell_id, "quarantined",
                                                   error=error)
                            say(f"QUAR  {cell_id}: {error} "
                                f"(crash-looping; `repro fsck --repair` "
                                f"releases)")
                        else:
                            summary.failed.append(cell_id)
                            self.log.error("campaign.cell.failed",
                                           cell=cell_id,
                                           attempts=run.attempt, error=error)
                            if self.progress is not None:
                                self.progress.cell(cell_id, "failed",
                                                   error=error)
                            say(f"FAIL  {cell_id}: {error}")
                running = still
                if pending or running:
                    time.sleep(0.02)
        finally:
            for run in running:  # interrupted: leave no orphans behind
                try:
                    run.proc.kill()
                    run.proc.communicate()
                except (OSError, ValueError):
                    pass
        wall_seconds = round(time.monotonic() - started_at, 3)
        self.log.info("campaign.done", done=len(summary.done),
                      failed=len(summary.failed),
                      skipped=len(summary.skipped),
                      quarantined=len(summary.quarantined),
                      degraded=len(summary.degraded),
                      wall_seconds=wall_seconds)
        self._session_record(summary, wall_seconds)
        return summary

    def _session_record(self, summary: CampaignSummary,
                        wall_seconds: float) -> None:
        """One ``kind="session"`` ledger record closing the campaign,
        linking it to its structured log and progress directory."""
        if self.ledger is None:
            return
        from repro.obs.ledger import record_from_session

        self.ledger.safe_append(record_from_session(
            "campaign",
            {"cells_total": (len(summary.done) + len(summary.failed)
                             + len(summary.skipped)
                             + len(summary.quarantined)),
             "cells_done": len(summary.done),
             "cells_failed": len(summary.failed),
             "cells_cached": len(summary.skipped),
             "cells_quarantined": len(summary.quarantined),
             "cells_degraded": len(summary.degraded),
             "wall_seconds": wall_seconds},
            log_path=str(self.log.path) if self.log.enabled else None,
            progress_dir=(str(self.progress.dir)
                          if self.progress is not None else None)))
