"""Recovery semantics for the protection path.

Without recovery, a scheme's verification step only *counts* decode
outcomes.  A :class:`RecoveryController` turns them into behavior:

* **Corrected** — the fetch stalls an extra ``correction_latency``
  cycles (ECC correction is not free on real controllers).
* **Detected-uncorrectable (DUE)** — bounded re-fetch/replay: after an
  exponential backoff the granule's data and metadata atom are re-read
  from DRAM (``RequestKind.RETRY`` traffic), transient faults are
  healed through the injector hook, and the granule is re-verified.
  When the retry budget is exhausted the granule is **poisoned**: its
  L2 sectors are marked poisoned, subsequent accesses complete
  immediately but count as poison propagations (the architectural
  containment story — poison reaches the consumer instead of silent
  corruption).
* **Corrupted metadata** — if the backing store says the granule's
  metadata carries an injected fault, the scheme's cached copy
  (dedicated mdcache entry or L2 metadata line) is invalidated before
  replay so the re-fetch observes DRAM, not the poisoned cache.

All outcomes land in a ``resilience`` stats group and, when tracing is
on, in the ``resilience`` trace category.  Recovery stalls are issued
outside any attributed fetch scope, so per-request latency attribution
books them under the *queue* component — the data+metadata+queue sum
identity is preserved by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.ecc.base import DecodeStatus
from repro.sim.engine import Simulator
from repro.sim.stats import StatGroup


@dataclass(frozen=True)
class RecoveryPolicy:
    """Knobs for the recovery state machine (config-embeddable)."""

    #: Extra cycles a detected-correctable verification stalls.
    correction_latency: int = 8
    #: Maximum re-fetch attempts for one DUE before giving up.
    max_retries: int = 3
    #: Backoff before attempt *n* is ``retry_backoff * 2**(n-1)`` cycles.
    retry_backoff: int = 32
    #: Poison the granule's L2 sectors when retries are exhausted.
    poison_on_exhaust: bool = True


class RecoveryController:
    """Per-system recovery state machine shared by all slices."""

    def __init__(self, sim: Simulator, stats: StatGroup,
                 policy: Optional[RecoveryPolicy] = None, tracer=None):
        self.sim = sim
        self.policy = policy if policy is not None else RecoveryPolicy()
        self._tracer = tracer
        #: Injector hook ``(granule, attempt) -> bits healed``; set by
        #: the system when an injector exists.
        self.heal_hook: Optional[Callable[[int, int], int]] = None
        #: Granules that exhausted their retry budget.
        self.poisoned: Set[int] = set()
        self._inflight: Dict[Tuple[int, int], List[Callable[[], None]]] = {}
        self._corrected = stats.counter("corrected_events")
        self._correction_stalls = stats.counter("correction_stall_cycles")
        self._dues = stats.counter("due_events")
        self._retries = stats.counter("retries")
        self._recovered = stats.counter("recovered")
        self._poisoned_count = stats.counter("poisoned_granules")
        self._propagations = stats.counter("poison_propagations")
        self._unrecovered = stats.counter("unrecovered")
        self._meta_invalidations = stats.counter("metadata_invalidations")
        self._retry_stalls = stats.counter("retry_stall_cycles")

    # -- entry point -----------------------------------------------------------

    def resolve(self, scheme, slice_id: int, granule: int,
                done: Callable[[], None]) -> None:
        """Verify one granule and run ``done`` when it is *resolved*.

        Clean verifications call ``done`` synchronously (identical
        timing to the no-recovery path); corrected and DUE outcomes
        delay it.  Concurrent resolutions of the same ``(slice,
        granule)`` share one retry sequence.
        """
        if granule in self.poisoned:
            # Already contained: complete immediately, count the
            # propagation — the consumer sees poison, not stale data.
            self._propagations.add(1)
            self._trace("poison_propagation", granule=granule)
            done()
            return
        key = (slice_id, granule)
        waiters = self._inflight.get(key)
        if waiters is not None:
            waiters.append(done)
            return
        status = scheme.verify_status(granule)
        if status is None or status is DecodeStatus.CLEAN \
                or status is DecodeStatus.MISCORRECTED:
            # MISCORRECTED is silent by definition — the hardware
            # believes the correction, so no recovery action fires.
            done()
            return
        if status is DecodeStatus.CORRECTED:
            self._corrected.add(1)
            self._correction_stalls.add(self.policy.correction_latency)
            self.sim.schedule(self.policy.correction_latency, done)
            return
        # DETECTED_UNCORRECTABLE / TAG_MISMATCH: replay.
        self._inflight[key] = [done]
        self._dues.add(1)
        self._trace("due", granule=granule, slice=slice_id,
                    status=status.name)
        fm = scheme.ctx.functional
        if fm is not None and fm.metadata_faulted(granule):
            scheme.invalidate_metadata(slice_id, granule)
            self._meta_invalidations.add(1)
            self._trace("metadata_invalidate", granule=granule,
                        slice=slice_id)
        self._attempt(scheme, slice_id, granule, attempt=1,
                      started=self.sim.now)

    # -- retry machinery -------------------------------------------------------

    def _attempt(self, scheme, slice_id: int, granule: int, attempt: int,
                 started: int) -> None:
        if attempt > self.policy.max_retries:
            self._exhausted(scheme, slice_id, granule, started)
            return
        self._retries.add(1)
        backoff = self.policy.retry_backoff * (2 ** (attempt - 1))
        self._trace("retry", granule=granule, slice=slice_id,
                    attempt=attempt, backoff=backoff)
        self.sim.schedule(backoff, self._replay, scheme, slice_id, granule,
                          attempt, started)

    def _replay(self, scheme, slice_id: int, granule: int, attempt: int,
                started: int) -> None:
        # Heal journaled transients first: the replayed read samples the
        # array again, and a transient upset does not reproduce.
        if self.heal_hook is not None:
            self.heal_hook(granule, attempt)
        scheme.refetch_granule(
            slice_id, granule,
            lambda: self._recheck(scheme, slice_id, granule, attempt,
                                  started))

    def _recheck(self, scheme, slice_id: int, granule: int, attempt: int,
                 started: int) -> None:
        status = scheme.verify_status(granule)
        if status is None or status in (DecodeStatus.CLEAN,
                                        DecodeStatus.CORRECTED,
                                        DecodeStatus.MISCORRECTED):
            self._recovered.add(1)
            self._trace("recovered", granule=granule, slice=slice_id,
                        attempt=attempt)
            self._finish(slice_id, granule, started)
            return
        self._attempt(scheme, slice_id, granule, attempt + 1, started)

    def _exhausted(self, scheme, slice_id: int, granule: int,
                   started: int) -> None:
        if self.policy.poison_on_exhaust:
            self.poisoned.add(granule)
            self._poisoned_count.add(1)
            self._trace("poisoned", granule=granule, slice=slice_id)
            # Waiters first: completing the fetch installs the granule's
            # sectors into the L2 after the check latency, and the
            # poison marks must land on those resident copies — not on
            # an empty line.  Same delay + FIFO ordering puts the
            # poison event after every install.
            self._finish(slice_id, granule, started)
            self.sim.schedule(scheme.ctx.ecc_check_latency,
                              scheme.poison_granule, slice_id, granule)
        else:
            self._unrecovered.add(1)
            self._trace("unrecovered", granule=granule, slice=slice_id)
            self._finish(slice_id, granule, started)

    def _finish(self, slice_id: int, granule: int, started: int) -> None:
        self._retry_stalls.add(self.sim.now - started)
        for waiter in self._inflight.pop((slice_id, granule)):
            waiter()

    def _trace(self, name: str, **args) -> None:
        tracer = self._tracer
        if tracer is not None and tracer.wants("resilience"):
            tracer.instant("resilience", name, self.sim.now, args=args)
