"""In-situ fault injection and recovery for timed simulations.

Two layers:

* **Injection + recovery** — :mod:`repro.resilience.faults` defines
  configurable fault processes (transient flips, stuck-at regions,
  burst events); :mod:`repro.resilience.injector` drives them against
  the functional backing store *during* a timed run;
  :mod:`repro.resilience.recovery` gives the protection path recovery
  semantics (correction latency, bounded re-fetch with backoff,
  poisoning, metadata invalidation).
* **Campaign resilience** — :mod:`repro.resilience.campaign` fans runs
  out to subprocess workers with timeouts, crash isolation, a failure
  taxonomy (transient / persistent / crash-looping with quarantine)
  and a JSONL journal for checkpoint/resume
  (:mod:`repro.resilience.worker` is the subprocess entry point).
* **Host chaos + fsck** — :mod:`repro.resilience.chaos` injects
  deterministic *host* faults (worker kills, torn writes, bit flips)
  at instrumented seams when armed via ``REPRO_CHAOS``;
  :mod:`repro.resilience.fsck` scans and heals the on-disk stores.

The campaign and fsck modules are intentionally *not* imported here:
they pull in :mod:`repro.core` / :mod:`repro.obs`, which themselves
import :mod:`repro.resilience.recovery` — import them directly.
"""

from repro.resilience.chaos import ChaosPolicy, active_chaos, stream_unit
from repro.resilience.faults import (
    FAULT_PROCESSES,
    BurstEvent,
    FaultProcess,
    StuckAtRegion,
    TransientFlips,
    make_process,
)
from repro.resilience.injector import Injector
from repro.resilience.recovery import RecoveryController, RecoveryPolicy

__all__ = [
    "FaultProcess",
    "TransientFlips",
    "StuckAtRegion",
    "BurstEvent",
    "FAULT_PROCESSES",
    "make_process",
    "Injector",
    "RecoveryController",
    "RecoveryPolicy",
    "ChaosPolicy",
    "active_chaos",
    "stream_unit",
]
