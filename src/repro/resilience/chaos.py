"""Deterministic host-fault injection for the execution stack.

The resilience layer in :mod:`repro.resilience` hardens the *simulated*
machine; this module attacks the *host* machinery that runs it: worker
processes, the content-addressed result cache, and the append-only
JSONL stores (ledger, campaign journal, structured log, progress
files).  A :class:`ChaosPolicy` decides — deterministically, from a
seed — whether a given *site* suffers a fault:

* **worker faults** — SIGKILL, an indefinite hang (the runner timeout
  must reap it), or an artificial slowdown, injected at the top of
  :func:`repro.resilience.worker.run_cell_result` for campaign
  subprocess attempts;
* **append faults** — a torn (truncated) write or a simulated
  ``ENOSPC`` in :func:`repro.obs.structlog.append_jsonl`, the shared
  seam under the ledger, journal, log and progress stores;
* **cache-entry faults** — a bit-flipped or truncated payload, or
  ``ENOSPC``, on :meth:`repro.analysis.result_cache.ResultCache.put`.

Determinism follows the idiom of
:class:`repro.ecc.faults.FaultCampaign`: each decision hashes
``"{seed}:{site}"`` with blake2b into a uniform unit float, so the
same policy attacks the same sites in the same way on every run —
which is what makes the crash-consistency oracle (chaotic run must
converge to a clean run's exact metrics) assertable.  Sites that occur
repeatedly (appends to one file) are numbered by per-process counters;
campaign attempts are numbered *across resumes* (the runner threads a
journal-derived attempt offset), so a retried or resumed cell faces a
fresh decision rather than the identical doom.

Activation is explicit: the ``REPRO_CHAOS`` environment variable (a
path to a policy JSON file, or inline JSON starting with ``{``) or the
``--chaos-policy`` CLI flag, which just sets the variable so
subprocess workers inherit it.  When unset, :func:`active_chaos`
returns ``None`` after one cached environment lookup — production
paths pay no other cost.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import sys
from dataclasses import asdict, dataclass, fields
from pathlib import Path
from typing import Any, Dict, Optional, Union

#: Environment variable activating chaos: a policy file path or inline JSON.
CHAOS_ENV = "REPRO_CHAOS"


def stream_unit(seed: int, site: str) -> float:
    """Uniform ``[0, 1)`` float for one ``(seed, site)`` pair — the
    blake2b decision-stream primitive shared by :class:`ChaosPolicy`
    and the campaign runner's deterministic retry jitter."""
    digest = hashlib.blake2b(f"{seed}:{site}".encode(),
                             digest_size=8).digest()
    return int.from_bytes(digest, "little") / 2.0 ** 64


@dataclass(frozen=True)
class ChaosPolicy:
    """A seeded, serializable description of host-fault pressure.

    All probabilities are independent per site; a value of ``0``
    disables that fault class entirely.
    """

    seed: int = 1
    #: Worker process faults (campaign subprocess attempts only).
    kill_prob: float = 0.0
    hang_prob: float = 0.0
    slow_prob: float = 0.0
    slow_seconds: float = 0.2
    #: JSONL append faults (ledger / journal / structlog / progress).
    torn_write_prob: float = 0.0
    enospc_prob: float = 0.0
    #: Result-cache entry payload corruption on store.
    corrupt_entry_prob: float = 0.0

    # -- decision streams ----------------------------------------------------

    def unit(self, site: str) -> float:
        """Uniform ``[0, 1)`` float for one decision site — the blake2b
        per-site stream idiom from ``FaultCampaign._trial_rng``."""
        return stream_unit(self.seed, site)

    def decide(self, site: str, prob: float) -> bool:
        """Does fault ``site`` fire under probability ``prob``?"""
        return prob > 0.0 and self.unit(site) < prob

    def pick(self, site: str, n: int) -> int:
        """Deterministic index in ``[0, n)`` for site-local choices."""
        return min(int(self.unit("pick:" + site) * n), n - 1)

    # -- fault sites ---------------------------------------------------------

    def worker_fault(self, cell: str, attempt: int) -> Optional[str]:
        """Fault mode for one worker attempt: ``"kill"``, ``"hang"``,
        ``"slow"`` or ``None``.  ``attempt`` is the campaign-global
        attempt number, so retries and resumes draw fresh decisions."""
        site = f"worker:{cell}:{attempt}"
        if self.decide("kill:" + site, self.kill_prob):
            return "kill"
        if self.decide("hang:" + site, self.hang_prob):
            return "hang"
        if self.decide("slow:" + site, self.slow_prob):
            return "slow"
        return None

    def mangle_append(self, name: str, data: bytes) -> bytes:
        """Attack one JSONL append: may raise a simulated ``ENOSPC``
        or return a torn (truncated) payload; usually returns ``data``
        unchanged.  ``name`` is the target file's basename; repeat
        appends to one file are numbered per process."""
        site = f"append:{name}:{_next_count('append:' + name)}"
        if self.decide("enospc:" + site, self.enospc_prob):
            raise OSError(errno.ENOSPC,
                          f"chaos: simulated ENOSPC appending to {name}")
        if len(data) > 2 and self.decide("torn:" + site,
                                         self.torn_write_prob):
            # Keep at least one byte and never the full record, so the
            # tail is genuinely torn (unparseable, missing newline).
            return data[:1 + self.pick(site, len(data) - 2)]
        return data

    def mangle_cache_entry(self, key: str, blob: bytes) -> bytes:
        """Attack one result-cache entry payload on store: simulated
        ``ENOSPC``, a single flipped bit, or a truncated blob."""
        site = f"cache:{key}:{_next_count('cache:' + key)}"
        if self.decide("enospc:" + site, self.enospc_prob):
            raise OSError(errno.ENOSPC,
                          f"chaos: simulated ENOSPC storing cache entry {key}")
        if blob and self.decide("flip:" + site, self.corrupt_entry_prob):
            i = self.pick("flip-at:" + site, len(blob))
            bit = self.pick("flip-bit:" + site, 8)
            mutated = bytearray(blob)
            mutated[i] ^= 1 << bit
            return bytes(mutated)
        if len(blob) > 2 and self.decide("torn:" + site,
                                         self.torn_write_prob):
            return blob[:1 + self.pick("cut:" + site, len(blob) - 2)]
        return blob

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ChaosPolicy":
        """Build a policy from a dict, ignoring unknown keys (so old
        code can read policy files written by newer versions)."""
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    @classmethod
    def load(cls, source: Union[str, os.PathLike]) -> "ChaosPolicy":
        """Load a policy from inline JSON (starts with ``{``) or a
        JSON file path — the two forms ``REPRO_CHAOS`` accepts."""
        text = str(source).strip()
        if not text.startswith("{"):
            text = Path(text).read_text(encoding="utf-8")
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError("chaos policy JSON must be an object")
        return cls.from_dict(data)


#: Per-process counters giving repeat fault sites distinct numbers.
_SITE_COUNTERS: Dict[str, int] = {}

#: ``active_chaos()`` memo, keyed on the raw env value so changing or
#: clearing ``REPRO_CHAOS`` (tests do) invalidates it naturally.
_ACTIVE: Dict[str, Any] = {"raw": None, "policy": None}

_WARNED_BAD_ENV = False


def _next_count(site_class: str) -> int:
    n = _SITE_COUNTERS.get(site_class, 0)
    _SITE_COUNTERS[site_class] = n + 1
    return n


def reset_site_counters() -> None:
    """Reset per-process site counters (test isolation hook)."""
    _SITE_COUNTERS.clear()


def active_chaos() -> Optional[ChaosPolicy]:
    """The environment-activated policy, or ``None`` (the production
    answer).  The parse is cached on the raw ``REPRO_CHAOS`` value; an
    unparseable value warns once and behaves as chaos-off, so a typo
    can never corrupt a run from deep inside an append."""
    global _WARNED_BAD_ENV
    raw = os.environ.get(CHAOS_ENV, "").strip()
    if _ACTIVE["raw"] == raw:
        return _ACTIVE["policy"]
    policy: Optional[ChaosPolicy] = None
    if raw and raw.lower() not in ("off", "0", "none", "disabled"):
        try:
            policy = ChaosPolicy.load(raw)
        except (OSError, ValueError) as exc:
            if not _WARNED_BAD_ENV:
                _WARNED_BAD_ENV = True
                print(f"warning: ignoring unreadable {CHAOS_ENV} "
                      f"policy ({exc})", file=sys.stderr)
            policy = None
    _ACTIVE["raw"] = raw
    _ACTIVE["policy"] = policy
    return policy
