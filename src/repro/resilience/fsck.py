"""Storage fsck: scan and heal the execution stack's on-disk state.

Every durable artifact this repo writes — the content-addressed result
cache, the run ledger and its derived index, campaign journals, the
structured log, progress files — is built to *tolerate* corruption
(torn tails skipped on read, checksums verified, corrupt cache entries
quarantined).  This module adds the offline complement: ``repro fsck
[--repair]`` walks those stores, reports a typed list of
:class:`Issue` objects, and heals what is safely healable.

Issue kinds and their repairs:

=================== ======== =======================================
kind                severity ``--repair`` action
=================== ======== =======================================
``torn_tail``       error    truncate the unterminated fragment
``garbage_line``    error    drop the unparseable line (rewrite)
``bad_checksum``    error    drop the corrupted record (rewrite)
``bad_entry``       error    quarantine the cache entry to ``.bad``
``orphan_tmp``      error    delete the leftover ``.tmp`` file
``stale_index``     error    rebuild the ledger index
``orphan_index``    error    delete the index (ledger is gone)
``quarantined_entry`` info   none (inventory of ``.bad`` siblings)
``quarantined_cell`` info    release the journal quarantine record
=================== ======== =======================================

Repairs only ever *remove* records that no reader would trust anyway
(every JSONL reader already skips them) or rebuild derived state, so
``--repair`` cannot lose good data.  Releasing journal quarantines is
the one deliberate exception to "mirror the readers": quarantine
exists to stop *automatic* retry loops, and an explicit ``fsck
--repair`` is the operator's "try again" signal — the quarantine
record is rewritten to a ``status="released"`` record that keeps the
cell's attempt count (so a deterministic chaos policy draws fresh
fault decisions on the rerun) and the cell reruns on the next resumed
campaign.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.obs.structlog import CHECKSUM_FIELD, record_checksum


@dataclass
class Issue:
    """One finding: where, what, and whether/how it was handled."""

    store: str      # cache | ledger | journal | log | progress
    path: str
    kind: str
    detail: str
    severity: str = "error"   # error | info
    repairable: bool = False
    repaired: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return dict(self.__dict__)


@dataclass
class FsckReport:
    """Everything one fsck pass found (and maybe fixed)."""

    issues: List[Issue] = field(default_factory=list)
    #: store name -> files scanned.
    scanned: Dict[str, int] = field(default_factory=dict)

    @property
    def unrepaired(self) -> List[Issue]:
        return [i for i in self.issues
                if i.severity == "error" and not i.repaired]

    @property
    def ok(self) -> bool:
        """True when no error-severity issue remains unrepaired."""
        return not self.unrepaired

    def _count(self, store: str, n: int = 1) -> None:
        self.scanned[store] = self.scanned.get(store, 0) + n

    def to_dict(self) -> Dict[str, Any]:
        return {"ok": self.ok, "scanned": dict(self.scanned),
                "issues": [i.to_dict() for i in self.issues]}


# -- JSONL stores -------------------------------------------------------------


def _classify_line(raw: bytes, terminated: bool) -> Optional[str]:
    """Issue kind for one raw JSONL line, or None when it is sound."""
    text = raw.strip()
    if not text:
        return None  # blank heal lines are by-design noise
    if not terminated:
        return "torn_tail"
    try:
        rec = json.loads(text)
    except ValueError:
        return "garbage_line"
    if not isinstance(rec, dict):
        return "garbage_line"
    ck = rec.pop(CHECKSUM_FIELD, None)
    if ck is not None and ck != record_checksum(rec):
        return "bad_checksum"
    return None


def fsck_jsonl(path: Union[str, os.PathLike], store: str,
               report: FsckReport, repair: bool = False,
               drop_status: Optional[str] = None,
               drop_kind: str = "quarantined_cell",
               drop_severity: str = "info") -> None:
    """Scan one JSONL file; with ``repair``, rewrite it keeping only
    sound lines (byte-identical — good records are never re-encoded).

    ``drop_status`` names a record status to surface as an
    informational, repairable issue (the journal quarantine release
    hook); those records are only dropped when repairing.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError:
        return
    report._count(store)
    keep: List[bytes] = []
    dirty = False
    lines = raw.split(b"\n")
    # split() yields a final "" element iff the file ends in a newline.
    for i, line in enumerate(lines):
        terminated = i < len(lines) - 1
        if not terminated and not line.strip():
            continue
        kind = _classify_line(line, terminated)
        if kind is not None:
            preview = line.strip()[:60].decode("utf-8", "replace")
            issue = Issue(store, str(path), kind,
                          f"line {i + 1}: {preview!r}", repairable=True)
            if repair:
                issue.repaired = True
                dirty = True
            else:
                keep.append(line)
            report.issues.append(issue)
            continue
        if drop_status is not None and line.strip():
            rec = json.loads(line.strip())
            if rec.get("status") == drop_status:
                issue = Issue(store, str(path), drop_kind,
                              f"cell {rec.get('cell', '?')!r} "
                              f"({rec.get('error', 'no error')})",
                              severity=drop_severity, repairable=True)
                if repair:
                    # Release, don't erase: the replacement record keeps
                    # the cell's attempt count, so deterministic chaos
                    # draws *fresh* fault decisions on the rerun instead
                    # of replaying the exact attempts that doomed it.
                    released = {"cell": rec.get("cell"),
                                "status": "released",
                                "released_from": drop_status}
                    if isinstance(rec.get("attempts"), int):
                        released["attempts"] = rec["attempts"]
                    released[CHECKSUM_FIELD] = record_checksum(released)
                    keep.append(json.dumps(released,
                                           sort_keys=True).encode("utf-8"))
                    issue.repaired = True
                    dirty = True
                    report.issues.append(issue)
                    continue
                report.issues.append(issue)
        keep.append(line)
    if repair and dirty:
        data = b"\n".join(keep)
        if data and not data.endswith(b"\n"):
            data += b"\n"
        tmp = path.with_suffix(path.suffix + ".fsck-tmp")
        tmp.write_bytes(data)
        os.replace(tmp, path)


# -- the result cache ---------------------------------------------------------


def fsck_cache(cache_dir: Union[str, os.PathLike], report: FsckReport,
               repair: bool = False) -> None:
    """Scan a result-cache directory: corrupt entries, leftover
    tempfiles, and the inventory of already-quarantined ``.bad``
    siblings."""
    from repro.analysis.result_cache import entry_checksum

    root = Path(cache_dir)
    if not root.is_dir():
        return
    for sub in sorted(root.iterdir()):
        if not (sub.is_dir() and len(sub.name) == 2):
            continue
        for tmp in sorted(sub.glob("*.tmp")):
            issue = Issue("cache", str(tmp), "orphan_tmp",
                          "leftover atomic-write tempfile",
                          repairable=True)
            if repair:
                try:
                    tmp.unlink()
                    issue.repaired = True
                except OSError:
                    pass
            report.issues.append(issue)
        for bad in sorted(sub.glob("*.bad")):
            report._count("cache")
            report.issues.append(Issue(
                "cache", str(bad), "quarantined_entry",
                "previously quarantined entry (cache clear removes)",
                severity="info"))
        for path in sorted(sub.glob("*.json")):
            report._count("cache")
            detail = None
            try:
                entry = json.loads(path.read_text(encoding="utf-8"))
                if not isinstance(entry, dict):
                    detail = "non-object entry"
                else:
                    ck = entry.get("checksum")
                    if ck is not None and ck != entry_checksum(entry):
                        detail = "checksum mismatch"
            except OSError:
                continue
            except ValueError:
                detail = "unparseable JSON"
            if detail is None:
                continue
            issue = Issue("cache", str(path), "bad_entry", detail,
                          repairable=True)
            if repair:
                try:
                    path.rename(path.with_suffix(".bad"))
                    issue.repaired = True
                except OSError:
                    pass
            report.issues.append(issue)


# -- the ledger and its derived index -----------------------------------------


def fsck_ledger(path: Union[str, os.PathLike], report: FsckReport,
                repair: bool = False) -> None:
    """Scan a ledger JSONL plus its ``.idx.json``: record-level issues
    first (their repair changes the file size), then index staleness
    against the healed bytes."""
    from repro.obs.ledger import RunLedger

    ledger = RunLedger(path)
    fsck_jsonl(ledger.path, "ledger", report, repair=repair)
    idx_path = ledger.index_path
    if not idx_path.exists():
        return
    report._count("ledger")
    if not ledger.path.exists():
        issue = Issue("ledger", str(idx_path), "orphan_index",
                      "index exists but its ledger is gone",
                      repairable=True)
        if repair:
            try:
                idx_path.unlink()
                issue.repaired = True
            except OSError:
                pass
        report.issues.append(issue)
        return
    size = ledger.path.stat().st_size
    detail = None
    try:
        idx = json.loads(idx_path.read_text(encoding="utf-8"))
        if not isinstance(idx, dict):
            detail = "non-object index"
        elif idx.get("bytes") != size:
            detail = (f"index bytes {idx.get('bytes')} != "
                      f"ledger bytes {size}")
        else:
            expected = ledger._index_of(ledger.records())
            if (idx.get("count") != expected["count"]
                    or set(idx.get("cells", {})) != set(expected["cells"])):
                orphans = sorted(set(idx.get("cells", {}))
                                 - set(expected["cells"]))
                detail = ("orphan index entries: " + ", ".join(orphans)
                          if orphans else "index disagrees with ledger")
    except ValueError:
        detail = "unparseable index JSON"
    except OSError:
        return
    if detail is None:
        return
    issue = Issue("ledger", str(idx_path), "stale_index", detail,
                  repairable=True)
    if repair:
        try:
            ledger.rebuild_index()
            issue.repaired = True
        except OSError:
            pass
    report.issues.append(issue)


# -- whole-stack entry point --------------------------------------------------


def fsck_all(cache_dir: Union[None, str, os.PathLike] = None,
             ledger: Union[None, str, os.PathLike] = None,
             journals: Optional[List[Union[str, os.PathLike]]] = None,
             log: Union[None, str, os.PathLike] = None,
             progress_dir: Union[None, str, os.PathLike] = None,
             repair: bool = False) -> FsckReport:
    """One fsck pass over every store the caller names (or the
    environment defaults for the cache and ledger)."""
    from repro.analysis.result_cache import default_cache_dir
    from repro.obs.ledger import RunLedger, default_ledger_path

    report = FsckReport()
    cache_root = Path(cache_dir) if cache_dir is not None \
        else default_cache_dir()
    if cache_root.is_dir():
        fsck_cache(cache_root, report, repair=repair)
    ledger_path = Path(ledger) if ledger is not None \
        else default_ledger_path()
    if ledger_path is not None:
        probe = RunLedger(ledger_path)
        if probe.path.exists() or probe.index_path.exists():
            fsck_ledger(ledger_path, report, repair=repair)
    for journal in journals or []:
        fsck_jsonl(journal, "journal", report, repair=repair,
                   drop_status="quarantined")
    if log is not None:
        fsck_jsonl(log, "log", report, repair=repair)
    if progress_dir is not None and Path(progress_dir).is_dir():
        for path in sorted(Path(progress_dir).glob("*.jsonl")):
            fsck_jsonl(path, "progress", report, repair=repair)
    return report
