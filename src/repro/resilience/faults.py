"""Configurable fault processes for in-situ injection.

A :class:`FaultProcess` describes *when and where* bits flip in the
backing store during a timed run; the :class:`~repro.resilience.injector.Injector`
calls :meth:`FaultProcess.step` once per injection window and the
process applies zero or more corruptions through the injector's
surface (``flip_data`` / ``flip_metadata`` / ``assert_stuck``).

Processes are frozen dataclasses so they can live inside the hashable
:class:`~repro.core.config.SystemConfig` and round-trip through JSON
for campaign cell specs (:func:`make_process` / ``to_dict``).
"""

from __future__ import annotations

import abc
import dataclasses
import random
from dataclasses import dataclass
from typing import Any, ClassVar, Dict, Optional


class FaultProcess(abc.ABC):
    """One source of faults, stepped once per injection window."""

    #: Registry key; also emitted by :meth:`to_dict` for round-tripping.
    kind: ClassVar[str] = ""

    @abc.abstractmethod
    def step(self, injector: Any, rng: random.Random, now: int,
             window: int) -> None:
        """Apply this window's faults.

        ``now`` is the current cycle and ``window`` the cycles elapsed
        since the previous step; the process decides how many events
        fall in ``(now - window, now]`` and applies them via
        ``injector``.
        """

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable spec; inverse of :func:`make_process`."""
        spec = dataclasses.asdict(self)  # type: ignore[call-overload]
        spec["kind"] = self.kind
        return spec


@dataclass(frozen=True)
class TransientFlips(FaultProcess):
    """Rate-based transient single-bit flips on resident memory.

    ``rate_per_kcycle`` is the expected number of flips per 1000 cycles
    across the whole resident footprint.  ``target`` selects the data
    region or granule metadata.  Transients are journaled as healable
    by default: a recovery re-read does not see them again.
    """

    rate_per_kcycle: float = 0.5
    target: str = "data"
    healable: bool = True

    kind: ClassVar[str] = "transient"

    def __post_init__(self) -> None:
        """Validate the target region."""
        if self.target not in ("data", "metadata"):
            raise ValueError(f"target must be data|metadata, got {self.target!r}")
        if self.rate_per_kcycle < 0:
            raise ValueError("rate_per_kcycle must be >= 0")

    def step(self, injector: Any, rng: random.Random, now: int,
             window: int) -> None:
        """Draw this window's flip count and scatter the flips."""
        expected = self.rate_per_kcycle * window / 1000.0
        count = int(expected)
        if rng.random() < expected - count:
            count += 1
        for _ in range(count):
            if self.target == "data":
                addr = injector.sample_data_addr(rng)
                if addr is None:
                    continue
                injector.flip_data(addr, rng.randrange(injector.sector_bits),
                                   healable=self.healable)
            else:
                granule = injector.sample_granule(rng)
                if granule is None:
                    continue
                injector.flip_metadata(granule,
                                       rng.randrange(injector.meta_bits),
                                       healable=self.healable)


@dataclass(frozen=True)
class StuckAtRegion(FaultProcess):
    """A hard stuck-at-1 fault over a fixed address region.

    Every ``period`` cycles the faulty bit of each sector in
    ``[base, base + span_bytes)`` is re-asserted to 1 — rewrites do not
    clear it for long, and recovery replays read the same bad value
    (``healable=False`` by construction).
    """

    base: int = 0
    span_bytes: int = 64
    bit: int = 0
    period: int = 2000

    kind: ClassVar[str] = "stuck-at"

    def __post_init__(self) -> None:
        """Validate geometry."""
        if self.span_bytes <= 0 or self.period <= 0:
            raise ValueError("span_bytes and period must be positive")

    def step(self, injector: Any, rng: random.Random, now: int,
             window: int) -> None:
        """Re-assert the stuck bits when a period boundary passed."""
        if now // self.period != (now - window) // self.period:
            injector.assert_stuck(self.base, self.span_bytes, self.bit)


@dataclass(frozen=True)
class BurstEvent(FaultProcess):
    """A one-shot multi-bit burst at a given cycle.

    Flips ``bits`` distinct bits in one sector (``target="data"``) or
    one granule's metadata (``target="metadata"``).  ``addr=None``
    samples a resident victim at fire time.  Bursts default to hard
    faults (``healable=False``): replay re-reads the same corruption,
    exhausting the bounded retry budget and exercising poisoning.
    """

    at_cycle: int = 0
    addr: Optional[int] = None
    bits: int = 4
    target: str = "data"
    healable: bool = False

    kind: ClassVar[str] = "burst"

    def __post_init__(self) -> None:
        """Validate burst shape."""
        if self.target not in ("data", "metadata"):
            raise ValueError(f"target must be data|metadata, got {self.target!r}")
        if self.bits < 1:
            raise ValueError("bits must be >= 1")

    def step(self, injector: Any, rng: random.Random, now: int,
             window: int) -> None:
        """Fire once when ``at_cycle`` falls inside this window."""
        if not (now - window < self.at_cycle <= now):
            return
        if self.target == "data":
            addr = self.addr
            if addr is None:
                addr = injector.sample_data_addr(rng)
            if addr is None:
                return
            for bit in rng.sample(range(injector.sector_bits),
                                  min(self.bits, injector.sector_bits)):
                injector.flip_data(addr, bit, healable=self.healable)
        else:
            granule = (injector.granule_of(self.addr)
                       if self.addr is not None
                       else injector.sample_granule(rng))
            if granule is None:
                return
            for bit in rng.sample(range(injector.meta_bits),
                                  min(self.bits, injector.meta_bits)):
                injector.flip_metadata(granule, bit, healable=self.healable)


#: Registry of fault-process kinds for spec round-tripping.
FAULT_PROCESSES: Dict[str, type] = {
    TransientFlips.kind: TransientFlips,
    StuckAtRegion.kind: StuckAtRegion,
    BurstEvent.kind: BurstEvent,
}


def make_process(kind: str, **kwargs: Any) -> FaultProcess:
    """Instantiate a fault process by registry kind (JSON spec inverse)."""
    try:
        cls = FAULT_PROCESSES[kind]
    except KeyError:
        raise ValueError(
            f"unknown fault process {kind!r}; "
            f"known: {sorted(FAULT_PROCESSES)}"
        ) from None
    return cls(**kwargs)
