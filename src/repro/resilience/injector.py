"""The in-situ fault injector.

An :class:`Injector` owns a set of :class:`~repro.resilience.faults.FaultProcess`
instances and steps them periodically *during* a timed run, corrupting
the functional backing store so the next verification on the
protection path actually sees the fault.  Ticks are scheduled as
engine daemons, so injection never extends a run on its own.

The injector is also the recovery layer's *heal* surface: healable
(transient) faults are reverted when a detected-uncorrectable read is
replayed, so a bounded re-fetch genuinely recovers from transients
while hard faults exhaust the retry budget and get poisoned.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.dram.backing import FunctionalMemory
from repro.resilience.faults import FaultProcess
from repro.sim.engine import Simulator
from repro.sim.stats import StatGroup


class Injector:
    """Steps fault processes against a functional backing store."""

    def __init__(self, processes: Sequence[FaultProcess], seed: int = 1,
                 interval: int = 500):
        if interval < 1:
            raise ValueError("injection interval must be >= 1 cycle")
        self.processes = tuple(processes)
        self.seed = seed
        self.interval = interval
        self._sim: Optional[Simulator] = None
        self._fm: Optional[FunctionalMemory] = None
        self._rng = random.Random(seed)
        self._tracer = None

    def bind(self, sim: Simulator, functional: FunctionalMemory,
             stats: Optional[StatGroup] = None, tracer=None) -> None:
        """Attach to one system's simulator, store and stats."""
        self._sim = sim
        self._fm = functional
        self._rng = random.Random(self.seed)
        self._tracer = tracer
        if stats is not None:
            self._data_flips = stats.counter("data_flips")
            self._meta_flips = stats.counter("metadata_flips")
            self._stuck_asserts = stats.counter("stuck_asserts")
            self._healed = stats.counter("bits_healed")
        else:
            grp = StatGroup("injector")
            self._data_flips = grp.counter("data_flips")
            self._meta_flips = grp.counter("metadata_flips")
            self._stuck_asserts = grp.counter("stuck_asserts")
            self._healed = grp.counter("bits_healed")

    # -- geometry helpers for fault processes ----------------------------------

    @property
    def sector_bits(self) -> int:
        """Bits per data sector (flip-target range)."""
        assert self._fm is not None
        return self._fm.sector_bytes * 8

    @property
    def meta_bits(self) -> int:
        """Bits per granule metadata atom (flip-target range)."""
        assert self._fm is not None
        return self._fm.layout.meta_per_granule * 8

    def granule_of(self, addr: int) -> int:
        """Granule containing a data address."""
        assert self._fm is not None
        return self._fm.layout.granule_of(addr)

    # -- target sampling -------------------------------------------------------

    def sample_data_addr(self, rng: random.Random) -> Optional[int]:
        """A uniformly random resident data-sector address (None if none)."""
        assert self._fm is not None
        addrs = self._fm.resident_sector_addrs()
        return rng.choice(addrs) if addrs else None

    def sample_granule(self, rng: random.Random) -> Optional[int]:
        """A uniformly random granule with materialized metadata."""
        assert self._fm is not None
        granules = self._fm.resident_granules()
        return rng.choice(granules) if granules else None

    # -- corruption surface ----------------------------------------------------

    def flip_data(self, addr: int, bit: int, healable: bool = True) -> None:
        """Flip one data bit; journal it when healable."""
        assert self._fm is not None
        self._fm.inject_bit_flip(addr, bit, healable=healable)
        self._data_flips.add(1)
        self._trace("inject_data", addr=addr, bit=bit, healable=healable)

    def flip_metadata(self, granule: int, bit: int,
                      healable: bool = True) -> None:
        """Flip one metadata bit of a granule; journal it when healable."""
        assert self._fm is not None
        self._fm.inject_metadata_corruption(granule, bit, healable=healable)
        self._meta_flips.add(1)
        self._trace("inject_meta", granule=granule, bit=bit,
                    healable=healable)

    def assert_stuck(self, base: int, span_bytes: int, bit: int) -> None:
        """Force ``bit`` of every sector in a region to 1 (stuck-at-1)."""
        assert self._fm is not None
        fm = self._fm
        fired = False
        for addr in range(base, base + span_bytes, fm.sector_bytes):
            current = fm.read_sector(addr)
            if not current[bit // 8] & (1 << (bit % 8)):
                fm.inject_bit_flip(addr, bit, healable=False)
                fired = True
        if fired:
            self._stuck_asserts.add(1)
            self._trace("stuck_assert", base=base, span=span_bytes, bit=bit)

    # -- recovery heal hook ----------------------------------------------------

    def heal(self, granule: int, attempt: int) -> int:
        """Revert a granule's healable faults (recovery replay hook).

        Returns the number of bit flips healed; hard faults survive.
        """
        assert self._fm is not None
        healed = self._fm.revert_faults(granule)
        if healed:
            self._healed.add(healed)
            self._trace("heal", granule=granule, bits=healed,
                        attempt=attempt)
        return healed

    # -- scheduling ------------------------------------------------------------

    def arm(self) -> None:
        """Start periodic injection ticks (engine daemon events)."""
        if not self.processes:
            return
        assert self._sim is not None, "bind() before arm()"
        self._sim.schedule_daemon(self.interval, self._tick)

    def _tick(self) -> None:
        assert self._sim is not None
        now = self._sim.now
        for process in self.processes:
            process.step(self, self._rng, now, self.interval)
        self._sim.schedule_daemon(self.interval, self._tick)

    def _trace(self, name: str, **args) -> None:
        tracer = self._tracer
        if tracer is not None and tracer.wants("resilience"):
            assert self._sim is not None
            tracer.instant("resilience", name, self._sim.now, args=args)
